// Microbenchmark: per-value cost of the four encryption schemes (RND, DET,
// OPE, Paillier) plus homomorphic addition and ciphertext size inflation.
// Expected shape: Paillier orders of magnitude above the symmetric schemes —
// the ratio the economic cost model encodes.

#include <benchmark/benchmark.h>

#include "crypto/cipher.h"
#include "crypto/enc_value.h"
#include "crypto/keyring.h"
#include "crypto/ope.h"

namespace mpq {
namespace {

const KeyMaterial& Km() {
  static const KeyMaterial km = MakeKeyMaterial(42, 1);
  return km;
}

void BM_EncryptValue(benchmark::State& state) {
  EncScheme scheme = static_cast<EncScheme>(state.range(0));
  Value v(int64_t{123456});
  uint64_t nonce = 1;
  for (auto _ : state) {
    auto ev = EncryptValue(v, scheme, 1, Km(), nonce++);
    benchmark::DoNotOptimize(ev);
  }
  state.SetLabel(EncSchemeName(scheme));
}
BENCHMARK(BM_EncryptValue)->DenseRange(0, 3);

void BM_DecryptValue(benchmark::State& state) {
  EncScheme scheme = static_cast<EncScheme>(state.range(0));
  Value v(int64_t{123456});
  EncValue ev = *EncryptValue(v, scheme, 1, Km(), 7);
  for (auto _ : state) {
    auto back = DecryptValue(ev, Km(), DataType::kInt64);
    benchmark::DoNotOptimize(back);
  }
  state.SetLabel(EncSchemeName(scheme));
}
BENCHMARK(BM_DecryptValue)->DenseRange(0, 3);

void BM_PaillierAdd(benchmark::State& state) {
  PaillierKey key = Km().paillier;
  uint128 c1 = PaillierEncrypt(key, 1000, 3);
  uint128 c2 = PaillierEncrypt(key, 2000, 5);
  for (auto _ : state) {
    c1 = PaillierAdd(key.n, c1, c2);
    benchmark::DoNotOptimize(c1);
  }
}
BENCHMARK(BM_PaillierAdd);

void BM_DetCompare(benchmark::State& state) {
  Cell a(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, Km(), 1));
  Cell b(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, Km(), 2));
  for (auto _ : state) {
    auto eq = CompareCells(CmpOp::kEq, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_DetCompare);

void BM_OpeCompare(benchmark::State& state) {
  Cell a(*EncryptValue(Value(int64_t{10}), EncScheme::kOpe, 1, Km(), 1));
  Cell b(*EncryptValue(Value(int64_t{20}), EncScheme::kOpe, 1, Km(), 2));
  for (auto _ : state) {
    auto lt = CompareCells(CmpOp::kLt, a, b);
    benchmark::DoNotOptimize(lt);
  }
}
BENCHMARK(BM_OpeCompare);

void BM_CiphertextBytes(benchmark::State& state) {
  // Size inflation per scheme for an 8-byte value (reported as label).
  EncScheme scheme = static_cast<EncScheme>(state.range(0));
  for (auto _ : state) {
    double bytes = EncSchemeCiphertextBytes(scheme, 8);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetLabel(std::string(EncSchemeName(scheme)) + " 8B -> " +
                 std::to_string(EncSchemeCiphertextBytes(scheme, 8)) + "B");
}
BENCHMARK(BM_CiphertextBytes)->DenseRange(0, 3);

}  // namespace
}  // namespace mpq

BENCHMARK_MAIN();

// SimNet serving benchmark: closed-loop clients over the TPC-H UAPenc mix
// with the fragment fabric routed through a simulated network, sweeping the
// message drop rate at 1/4/8 client threads — throughput and tail latency
// vs fault rate — plus a provider-crash scenario measuring the failover
// path (recoveries, retransfer bytes, added latency). Emits
// BENCH_simnet.json (override with --json <path>).
//
//   bench_simnet [data_sf] [warm_iters] [--json path]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "exec/failover.h"
#include "net/simnet.h"
#include "profile/propagate.h"
#include "service/query_service.h"
#include "sql/binder.h"
#include "tpch/dbgen.h"
#include "tpch/scenarios.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p * static_cast<double>(samples.size());
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(rank + 0.5) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

// The bench_service TPC-H cross-section (Q6/Q3/Q12 shapes): enough plan
// variety to exercise several providers without dominating wall clock.
const std::vector<std::string> kStatements = {
    "select sum(l_extendedprice) from lineitem "
    "where l_shipdate >= 730 and l_shipdate < 1095 "
    "and l_discount >= 0.05 and l_discount <= 0.07 and l_quantity < 24.0",
    "select o_orderkey, o_orderdate, o_shippriority, sum(l_extendedprice) "
    "from customer join orders on c_custkey = o_custkey "
    "join lineitem on o_orderkey = l_orderkey "
    "where c_mktsegment = 'BUILDING' and o_orderdate < 1204 "
    "and l_shipdate > 1204 "
    "group by o_orderkey, o_orderdate, o_shippriority",
    "select l_shipmode, count(*) from orders "
    "join lineitem on o_orderkey = l_orderkey "
    "where l_shipmode = 'MAIL' and l_receiptdate >= 730 "
    "and l_receiptdate < 1095 and l_commitdate < l_receiptdate "
    "group by l_shipmode",
};

/// One closed-loop measurement against `service`. Returns false on error.
bool RunClients(QueryService& service, const TpchEnv& env, size_t clients,
                int warm_iters, std::vector<double>* latencies_ms,
                double* wall_s) {
  std::mutex merge_mu;
  bool failed = false;
  std::vector<std::thread> threads;
  auto wall0 = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto session = service.OpenSession(env.user);
      if (!session.ok()) return;
      std::vector<double> local;
      for (int i = 0; i < warm_iters; ++i) {
        for (size_t s = 0; s < kStatements.size(); ++s) {
          const std::string& sql = kStatements[(s + c) % kStatements.size()];
          auto t0 = Clock::now();
          auto r = service.ExecuteSql(sql, *session);
          if (!r.ok()) {
            std::lock_guard<std::mutex> lock(merge_mu);
            failed = true;
            return;
          }
          local.push_back(MsSince(t0));
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies_ms->insert(latencies_ms->end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  *wall_s = MsSince(wall0) / 1e3;
  return !failed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      mpq::bench::ParseJsonFlag(&argc, argv, "BENCH_simnet.json");
  double data_sf = argc > 1 ? std::atof(argv[1]) : 5e-5;
  int warm_iters = argc > 2 ? std::atoi(argv[2]) : 30;
  if (data_sf <= 0) data_sf = 5e-5;
  if (warm_iters < 1) warm_iters = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/8);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/17);
  Result<Policy> policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
  if (!policy.ok()) {
    std::printf("policy error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);

  std::printf(
      "SimNet serving bench: TPC-H UAPenc mix {Q6,Q3,Q12}, data_sf=%.4g, "
      "%d warm iters/client, drop-rate sweep + provider crash\n\n",
      data_sf, warm_iters);
  std::printf("%8s %10s %10s %10s %8s %8s %8s %10s\n", "clients", "droprate",
              "p50", "p99", "qps", "retries", "drops", "failovers");

  JsonWriter w;
  w.BeginObject()
      .Key("bench")
      .String("simnet")
      .Key("scenario")
      .String("UAPenc")
      .Key("data_sf")
      .Double(data_sf)
      .Key("warm_iters")
      .Int(warm_iters);
  mpq::bench::WriteRunMeta(&w);
  w.Key("runs").BeginArray();

  for (double drop : {0.0, 0.02, 0.1}) {
    for (size_t clients : {1u, 4u, 8u}) {
      SimNet net(&env.subjects);
      net.ConfigureFromTopology(topo, env.subjects, /*latency_s=*/0);
      FaultPlan faults;
      faults.seed = 7 + static_cast<uint64_t>(drop * 1000);
      faults.drop_prob = drop;
      net.SetFaultPlan(faults);

      ServiceConfig config;
      config.exec_threads = 0;
      config.max_in_flight = 2 * clients;
      config.net = &net;
      config.net_policy.max_attempts = 4;
      QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                           &topo, config);
      for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);

      std::vector<double> latencies;
      double wall_s = 0;
      if (!RunClients(service, env, clients, warm_iters, &latencies,
                      &wall_s)) {
        std::printf("execution failed (clients=%zu drop=%.2f)\n", clients,
                    drop);
        return 1;
      }
      double p50 = PercentileMs(latencies, 0.50);
      double p99 = PercentileMs(latencies, 0.99);
      double qps =
          wall_s > 0 ? static_cast<double>(latencies.size()) / wall_s : 0;
      SimNetStats ns = net.GetStats();
      ServiceMetrics m = service.Metrics();
      std::printf("%8zu %9.0f%% %8.3fms %8.3fms %8.0f %8llu %8llu %10llu\n",
                  clients, drop * 100, p50, p99, qps,
                  static_cast<unsigned long long>(ns.retries),
                  static_cast<unsigned long long>(ns.drops),
                  static_cast<unsigned long long>(m.failovers));
      w.BeginObject()
          .Key("clients")
          .UInt(clients)
          .Key("drop_prob")
          .Double(drop)
          .Key("p50_ms")
          .Double(p50)
          .Key("p99_ms")
          .Double(p99)
          .Key("qps")
          .Double(qps)
          .Key("net_retries")
          .UInt(ns.retries)
          .Key("net_drops")
          .UInt(ns.drops)
          .Key("net_virtual_s")
          .Double(ns.virtual_s_total)
          .Key("failovers")
          .UInt(m.failovers)
          .Key("queries")
          .UInt(m.queries)
          .EndObject();
    }
  }
  w.EndArray();

  // Crash scenario, two flavors: (1) a provider dies *mid-run* of a cached
  // plan — the in-request retry-on-failover path (probe the optimizer's
  // assignment to know which step to kill); (2) every provider dies between
  // requests — the liveness-epoch cache keying re-plans each statement
  // eagerly around the outage.
  {
    SimNet net(&env.subjects);
    net.ConfigureFromTopology(topo, env.subjects, 0);
    ServiceConfig config;
    config.exec_threads = 0;
    config.net = &net;
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);
    auto session = service.OpenSession(env.user);
    if (!session.ok()) return 1;
    for (const std::string& sql : kStatements) {
      if (!service.ExecuteSql(sql, *session).ok()) return 1;
    }

    // Probe statement 0's minimum-cost assignment for a provider step to
    // kill (the service chose the same plan over the same inputs).
    int crash_step = -1;
    SubjectId victim = kInvalidSubject;
    {
      auto plan = PlanFromSql(kStatements[0], env.catalog);
      if (!plan.ok() ||
          !DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{})
               .ok() ||
          !AnnotatePlan(plan->get(), env.catalog).ok()) {
        return 1;
      }
      SimNet probe_net(&env.subjects);
      FailoverExecutor probe(&env.catalog, &env.subjects, &*policy, &prices,
                             &topo, &probe_net, FailoverConfig{});
      for (const auto& [rel, t] : db.tables) probe.LoadTable(rel, &t);
      auto probed = probe.Execute(plan->get(), env.user);
      if (probed.ok()) {
        for (const auto& [node_id, subject] :
             probed->assignment.extended.assignment) {
          if (env.subjects.Get(subject).kind == SubjectKind::kProvider) {
            crash_step = node_id;
            victim = subject;
            break;
          }
        }
      }
    }

    double midrun_ms = 0;
    if (victim != kInvalidSubject) {
      FaultPlan faults;
      faults.crash_at_step[victim] = crash_step;
      net.SetFaultPlan(faults);
      auto t0 = Clock::now();
      auto r = service.ExecuteSql(kStatements[0], *session);
      midrun_ms = MsSince(t0);
      if (!r.ok()) {
        std::printf("mid-run crash recovery failed: %s\n",
                    r.status().ToString().c_str());
        return 1;
      }
      net.SetFaultPlan(FaultPlan{});
    }

    for (SubjectId p : env.providers) net.Crash(p);
    auto t1 = Clock::now();
    for (const std::string& sql : kStatements) {
      auto r = service.ExecuteSql(sql, *session);
      if (!r.ok()) {
        std::printf("crash recovery failed: %s\n",
                    r.status().ToString().c_str());
        return 1;
      }
    }
    double replan_ms = MsSince(t1);
    ServiceMetrics m = service.Metrics();
    std::printf(
        "\ncrash scenarios: mid-run provider crash -> %llu in-request "
        "failover(s), %.3f ms (failover_p95=%.3f ms, retransfer=%llu B); "
        "all %zu providers down between requests -> eager re-plan of the "
        "mix in %.3f ms\n",
        static_cast<unsigned long long>(m.failovers), midrun_ms,
        m.failover_p95_ms,
        static_cast<unsigned long long>(m.failover_retransfer_bytes),
        env.providers.size(), replan_ms);
    w.Key("crash")
        .BeginObject()
        .Key("midrun_failovers")
        .UInt(m.failovers)
        .Key("midrun_recover_ms")
        .Double(midrun_ms)
        .Key("failover_p95_ms")
        .Double(m.failover_p95_ms)
        .Key("retransfer_bytes")
        .UInt(m.failover_retransfer_bytes)
        .Key("providers_down")
        .UInt(env.providers.size())
        .Key("replan_mix_ms")
        .Double(replan_ms)
        .EndObject();
  }

  w.EndObject();
  mpq::bench::WriteJsonFile(json_path, w.TakeString());
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

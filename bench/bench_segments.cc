// Storage-segment benchmarks: (1) compression ratio of the segment codec
// over the v2 column wire format, per TPC-H column; (2) scan throughput
// with and without zone-map segment skipping on shipdate-clustered
// lineitem; (3) a budget-forced spill-to-disk join against the in-memory
// hash join, verified bit-identical; (4) bytes-on-wire of the distributed
// runtime with segment-compressed transfers vs the uncompressed v2 wire,
// over random authorized scenarios (dictionary-heavy string columns).
//
// Emits BENCH_segments.json (override with --json <path>). The process
// exits nonzero unless every differential verifies, string/dict columns
// compress >= 2x, the spill run recursed through >= 2 partition
// generations, and the compressed wire is measurably smaller.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/plan_builder.h"
#include "bench_json.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/failover.h"
#include "net/simnet.h"
#include "storage/segment.h"
#include "testing/random_plan.h"
#include "testing/reference_exec.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_schema.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

double BestOf(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, run());
  return best;
}

/// Columns are labeled by how the codec sees them: low-cardinality strings
/// (repertoire under a quarter of the rows) dictionary-encode and carry the
/// compression floor; near-unique strings like p_name stay plain.
std::string TypeName(const Table& t, size_t c) {
  switch (t.columns()[c].type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    default: {
      std::set<std::string> distinct;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        Cell cell = t.at(r, c);
        if (cell.is_plain() && cell.plain().is_string()) {
          distinct.insert(cell.plain().AsString());
        }
      }
      bool dict = t.num_rows() > 0 && distinct.size() * 4 <= t.num_rows();
      return dict ? "dict" : "string";
    }
  }
}

/// Rows of `t` reordered ascending by int64 column `col` (stable), so zone
/// maps over the sorted column become disjoint and a range scan can prune.
Table SortedBy(const Table& t, size_t col) {
  std::vector<size_t> order(t.num_rows());
  for (size_t r = 0; r < order.size(); ++r) order[r] = r;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.at(a, col).plain().AsInt() < t.at(b, col).plain().AsInt();
  });
  Table out(t.columns());
  out.ReserveRows(t.num_rows());
  for (size_t r : order) out.AppendRowFrom(t, r);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      bench::ParseJsonFlag(&argc, argv, "BENCH_segments.json");
  double data_sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (data_sf <= 0) data_sf = 0.02;
  if (reps < 1) reps = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/5);
  std::printf(
      "Segment codec / zone maps / spill, TPC-H data_sf=%.4g "
      "(lineitem rows: %zu), best of %d reps\n\n",
      data_sf, db.at(env.lineitem).num_rows(), reps);

  bool ok = true;
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("segments");
  w.Key("data_sf").Double(data_sf);
  w.Key("lineitem_rows").UInt(db.at(env.lineitem).num_rows());
  bench::WriteRunMeta(&w);

  // ------------------------------------------------------ compression ---
  // Each TPC-H column as a single-column table: v2 wire bytes vs segment
  // bytes, decode verified bit-identical. The gate takes the *worst*
  // dict-encodable string column: dictionary + bit-packed codes must beat
  // the raw wire >= 2x.
  std::printf("%-18s %-7s %10s %10s %7s\n", "column", "type", "wire(B)",
              "seg(B)", "ratio");
  double min_string_ratio = 1e300;
  w.Key("compression").BeginArray();
  for (RelId rel : {env.lineitem, env.orders, env.part}) {
    const Table& t = db.at(rel);
    for (size_t c = 0; c < t.num_columns(); ++c) {
      Table one;
      one.AddColumn(t.columns()[c], t.ShareCol(c));
      std::string wire = one.SerializeColumns();
      Result<std::string> enc = EncodeSegment(one);
      if (!enc.ok()) {
        std::printf("%-18s encode error: %s\n", t.columns()[c].name.c_str(),
                    enc.status().ToString().c_str());
        ok = false;
        continue;
      }
      Result<SegmentReader> rd = SegmentReader::Open(*enc);
      Result<Table> back = rd.ok() ? rd->Decode() : rd.status();
      bool verified = back.ok() && back->SerializeColumns() == wire;
      ok = ok && verified;
      double ratio = static_cast<double>(wire.size()) /
                     static_cast<double>(enc->size());
      const ExecColumn& col = t.columns()[c];
      std::string type_name = TypeName(t, c);
      if (type_name == "dict") {
        min_string_ratio = std::min(min_string_ratio, ratio);
      }
      std::printf("%-18s %-7s %10zu %10zu %6.2fx%s\n", col.name.c_str(),
                  type_name.c_str(), wire.size(), enc->size(), ratio,
                  verified ? "" : "  DECODE MISMATCH");
      w.BeginObject();
      w.Key("column").String(col.name);
      w.Key("type").String(type_name);
      w.Key("wire_bytes").UInt(wire.size());
      w.Key("segment_bytes").UInt(enc->size());
      w.Key("ratio").Double(ratio);
      w.Key("verified").Bool(verified);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("min_string_ratio").Double(min_string_ratio);
  bool compression_gate = min_string_ratio >= 2.0;
  ok = ok && compression_gate;
  std::printf("\nworst string/dict column ratio: %.2fx (floor 2.00x) %s\n\n",
              min_string_ratio, compression_gate ? "" : "FAIL");

  // --------------------------------------------------------- zone scan ---
  // lineitem clustered on l_shipdate, segmented at 4096 rows: a range scan
  // over the cluster key decodes only the qualifying segments. The full
  // scan runs the same plan over the same (sorted) rows held in memory.
  {
    const Table& li = db.at(env.lineitem);
    int date_col = li.ColIndex(env.catalog.attrs().Find("l_shipdate"));
    Table sorted = SortedBy(li, static_cast<size_t>(date_col));
    Result<SegmentedTable> seg = SegmentedTable::FromTable(sorted, 4096);
    int64_t lo = sorted.at(0, date_col).plain().AsInt();
    int64_t hi = sorted.at(sorted.num_rows() - 1, date_col).plain().AsInt();
    int64_t cutoff = lo + (hi - lo) / 8;  // ~12% of the clustered range

    PlanBuilder b(&env.catalog);
    PlanPtr p = Select(b.Rel("lineitem"),
                       {b.Pv("l_shipdate", CmpOp::kLt, Value(cutoff))});
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    if (!seg.ok() || !fp.ok()) {
      std::printf("zone scan setup error\n");
      ok = false;
    } else {
      // Three engines over identical rows: the already-decoded in-memory
      // table, the segment scan decoding every segment (skipping off), and
      // the zone-mapped segment scan. The skipping speedup is the honest
      // out-of-core comparison (both sides pay decode); the in-memory time
      // bounds what decode itself costs.
      auto run_scan = [&](bool segments, bool skipping, ExecContext* out) {
        ExecContext local;
        ExecContext* c = out != nullptr ? out : &local;
        c->catalog = &env.catalog;
        if (segments) {
          c->segment_tables[env.lineitem] = &*seg;
        } else {
          c->base_tables[env.lineitem] = &sorted;
        }
        c->zone_map_skipping = skipping;
        return ExecutePlan(fp->get(), c);
      };
      ExecContext zone_ctx;
      Result<Table> mem = run_scan(false, true, nullptr);
      Result<Table> all_segs = run_scan(true, false, nullptr);
      Result<Table> zoned = run_scan(true, true, &zone_ctx);
      bool verified = mem.ok() && all_segs.ok() && zoned.ok() &&
                      CanonicalRows(*mem) == CanonicalRows(*zoned) &&
                      CanonicalRows(*mem) == CanonicalRows(*all_segs);
      ok = ok && verified;
      uint64_t skipped = zone_ctx.segments_skipped.load();
      uint64_t scanned = zone_ctx.segments_scanned.load();

      auto timed = [&](bool segments, bool skipping) {
        return BestOf(reps, [&] {
          auto t0 = Clock::now();
          Result<Table> t = run_scan(segments, skipping, nullptr);
          auto t1 = Clock::now();
          if (!t.ok()) return 1e300;
          return std::chrono::duration<double>(t1 - t0).count();
        });
      };
      double mem_s = timed(false, true);
      double full_s = timed(true, false);
      double zone_s = timed(true, true);
      std::printf(
          "zone scan: in-memory %.2f ms, all-segments %.2f ms, "
          "zone-mapped %.2f ms (%.2fx over all-segments), "
          "%llu/%llu segments skipped, %zu rows%s\n\n",
          mem_s * 1e3, full_s * 1e3, zone_s * 1e3, full_s / zone_s,
          static_cast<unsigned long long>(skipped),
          static_cast<unsigned long long>(scanned),
          zoned.ok() ? zoned->num_rows() : 0,
          verified ? "" : "  RESULT MISMATCH");
      w.Key("zone_scan").BeginObject();
      w.Key("in_memory_ms").Double(mem_s * 1e3);
      w.Key("all_segments_ms").Double(full_s * 1e3);
      w.Key("zone_scan_ms").Double(zone_s * 1e3);
      w.Key("speedup_over_full_decode").Double(full_s / zone_s);
      w.Key("segments_skipped").UInt(skipped);
      w.Key("segments_considered").UInt(scanned);
      w.Key("rows").UInt(zoned.ok() ? zoned->num_rows() : 0);
      w.Key("verified").Bool(verified);
      w.EndObject();
    }
  }

  // ------------------------------------------------------------- spill ---
  // lineitem JOIN orders under a 64 KB budget: the build side partitions by
  // key hash, overflow partitions spill to disk as segments and recurse
  // (>= 2 generations asserted). Output must serialize bit-identically to
  // the unbounded in-memory join, single-threaded and at 8 threads.
  {
    PlanBuilder b(&env.catalog);
    Result<PlanPtr> fp =
        FinishPlan(Join(b.Rel("lineitem"), b.Rel("orders"),
                        {b.Pa("l_orderkey", CmpOp::kEq, "o_orderkey")}),
                   env.catalog);
    ThreadPool pool8(8);
    auto run = [&](uint64_t budget, ThreadPool* pool, ExecContext* out) {
      ExecContext local;
      ExecContext* ctx = out != nullptr ? out : &local;
      ctx->catalog = &env.catalog;
      ctx->base_tables[env.lineitem] = &db.at(env.lineitem);
      ctx->base_tables[env.orders] = &db.at(env.orders);
      ctx->memory_budget = budget;
      ctx->pool = pool;
      return ExecutePlan(fp->get(), ctx);
    };
    Result<Table> mem = fp.ok()
                            ? run(0, nullptr, nullptr)
                            : Result<Table>(fp.status());
    ExecContext spill_ctx, spill8_ctx;
    Result<Table> sp1 =
        fp.ok() ? run(64 << 10, nullptr, &spill_ctx) : mem;
    Result<Table> sp8 = fp.ok() ? run(64 << 10, &pool8, &spill8_ctx) : mem;
    bool verified = mem.ok() && sp1.ok() && sp8.ok() &&
                    sp1->SerializeColumns() == mem->SerializeColumns() &&
                    sp8->SerializeColumns() == mem->SerializeColumns();
    uint64_t generations = spill_ctx.spill_generations.load();
    bool spill_gate = verified && generations >= 2;
    ok = ok && spill_gate;

    double mem_s = BestOf(reps, [&] {
      auto t0 = Clock::now();
      Result<Table> t = run(0, nullptr, nullptr);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    double sp1_s = BestOf(reps, [&] {
      auto t0 = Clock::now();
      Result<Table> t = run(64 << 10, nullptr, nullptr);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    double sp8_s = BestOf(reps, [&] {
      auto t0 = Clock::now();
      Result<Table> t = run(64 << 10, &pool8, nullptr);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    std::printf(
        "spill join: in-memory %.2f ms, spilled %.2f ms (1t) / %.2f ms "
        "(8t), %llu partitions over %llu generations, %.1f KB spilled, "
        "%zu rows%s\n\n",
        mem_s * 1e3, sp1_s * 1e3, sp8_s * 1e3,
        static_cast<unsigned long long>(spill_ctx.spill_partitions.load()),
        static_cast<unsigned long long>(generations),
        static_cast<double>(spill_ctx.spill_bytes.load()) / 1024.0,
        mem.ok() ? mem->num_rows() : 0,
        spill_gate ? "" : "  GATE FAIL (verify or generations)");
    w.Key("spill_join").BeginObject();
    w.Key("budget_bytes").UInt(64 << 10);
    w.Key("in_memory_ms").Double(mem_s * 1e3);
    w.Key("spilled_1t_ms").Double(sp1_s * 1e3);
    w.Key("spilled_8t_ms").Double(sp8_s * 1e3);
    w.Key("spill_partitions").UInt(spill_ctx.spill_partitions.load());
    w.Key("spill_generations").UInt(generations);
    w.Key("spill_bytes").UInt(spill_ctx.spill_bytes.load());
    w.Key("rows").UInt(mem.ok() ? mem->num_rows() : 0);
    w.Key("verified").Bool(verified);
    w.EndObject();
  }

  // ----------------------------------------------------- bytes on wire ---
  // Random authorized scenarios through the full distributed pipeline
  // (SimNet transfers between assignees), with the segment wire encoding
  // off vs on. String columns draw from a 6-value vocabulary, so
  // dictionary pages dominate; both runs must match the plaintext oracle.
  {
    uint64_t wire_v2 = 0, wire_seg = 0;
    size_t scenarios = 0;
    bool wire_verified = true;
    for (uint64_t seed = 1; seed <= 60 && scenarios < 12; ++seed) {
      RandomPlanOptions opts;
      opts.provider_plain_prob = 0.50;
      opts.provider_enc_prob = 0.45;
      Result<RandomScenario> sc = MakeRandomScenario(seed, opts);
      if (!sc.ok()) continue;
      std::map<RelId, Table> data = MakeRandomData(*sc, seed ^ 0xfeed, 200);
      PricingTable prices;
      prices.SetDefault(PriceList{10.0, 0.0002, 0.001});
      for (const Subject& s : sc->subjects->subjects()) {
        if (s.kind == SubjectKind::kProvider) {
          prices.Set(s.id, PriceList{0.05, 0.0002, 0.001});
        }
      }
      Topology topo = Topology::PaperDefaults(*sc->subjects);
      ReferenceExecutor oracle(sc->catalog.get());
      for (const auto& [rel, t] : data) oracle.LoadTable(rel, &t);
      Result<Table> reference = oracle.Run(sc->plan.get());
      if (!reference.ok()) continue;
      std::vector<std::string> oracle_rows = CanonicalRows(*reference);

      auto run_wire = [&](bool compress) -> Result<FailoverOutcome> {
        SimNet net(sc->subjects.get());
        FailoverConfig cfg;
        cfg.compress_wire = compress;
        FailoverExecutor exec(sc->catalog.get(), sc->subjects.get(),
                              sc->policy.get(), &prices, &topo, &net, cfg);
        for (const auto& [rel, t] : data) exec.LoadTable(rel, &t);
        return exec.Execute(sc->plan.get(), sc->user);
      };
      Result<FailoverOutcome> v2 = run_wire(false);
      Result<FailoverOutcome> seg = run_wire(true);
      if (!v2.ok() || !seg.ok()) continue;
      if (v2->result.total_transfer_bytes == 0) continue;  // single-site
      wire_verified = wire_verified &&
                      CanonicalRows(v2->result.result) == oracle_rows &&
                      CanonicalRows(seg->result.result) == oracle_rows;
      wire_v2 += v2->result.total_transfer_bytes;
      wire_seg += seg->result.total_transfer_bytes;
      scenarios++;
    }
    double drop = wire_v2 > 0
                      ? 1.0 - static_cast<double>(wire_seg) /
                                  static_cast<double>(wire_v2)
                      : 0.0;
    bool wire_gate = wire_verified && scenarios > 0 && wire_seg < wire_v2;
    ok = ok && wire_gate;
    std::printf(
        "wire bytes over %zu distributed scenarios: v2 %llu B, "
        "segment %llu B (%.1f%% drop)%s\n\n",
        scenarios, static_cast<unsigned long long>(wire_v2),
        static_cast<unsigned long long>(wire_seg), drop * 100.0,
        wire_gate ? "" : "  GATE FAIL");
    w.Key("wire").BeginObject();
    w.Key("scenarios").UInt(scenarios);
    w.Key("v2_bytes").UInt(wire_v2);
    w.Key("segment_bytes").UInt(wire_seg);
    w.Key("drop").Double(drop);
    w.Key("verified").Bool(wire_verified);
    w.EndObject();
  }

  w.Key("all_verified").Bool(ok);
  w.EndObject();
  bench::WriteJsonFile(json_path, w.TakeString());
  std::printf("wrote %s\n", json_path.c_str());
  std::printf("gates: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}

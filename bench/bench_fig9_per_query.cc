// Reproduces Figure 9: normalized economic cost of evaluating each of the
// 22 TPC-H queries under the UA, UAPenc and UAPmix authorization scenarios
// (UA normalized to 1.0 per query).
//
// Expected shape (paper): UAPenc and UAPmix below UA on essentially every
// query; UAPmix at or below UAPenc.

#include <cstdio>

#include "tpch_cost_common.h"

using namespace mpq;
using mpq::bench::QueryCost;

int main() {
  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);

  std::printf("Figure 9 — normalized per-query cost (UA = 1.0)\n");
  std::printf("%-6s %10s %10s %10s\n", "query", "UA", "UAPenc", "UAPmix");
  int wins_enc = 0, wins_mix = 0, total = 0;
  for (int q = 1; q <= NumTpchQueries(); ++q) {
    Result<double> ua = QueryCost(env, q, AuthScenario::kUA);
    Result<double> enc = QueryCost(env, q, AuthScenario::kUAPenc);
    Result<double> mix = QueryCost(env, q, AuthScenario::kUAPmix);
    if (!ua.ok() || !enc.ok() || !mix.ok()) {
      std::printf("%-6d error: %s\n", q,
                  (!ua.ok() ? ua.status() : !enc.ok() ? enc.status()
                                                      : mix.status())
                      .ToString()
                      .c_str());
      continue;
    }
    double base = *ua;
    std::printf("%-6d %10.3f %10.3f %10.3f\n", q, 1.0, *enc / base,
                *mix / base);
    ++total;
    if (*enc <= base + 1e-12) ++wins_enc;
    if (*mix <= *enc + 1e-12) ++wins_mix;
  }
  std::printf(
      "\nshape check: UAPenc<=UA on %d/%d queries; UAPmix<=UAPenc on %d/%d\n",
      wins_enc, total, wins_mix, total);
  return 0;
}

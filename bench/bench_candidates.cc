// Microbenchmark: candidate-set computation (Sec 6 step 1) as plan size and
// subject count grow — the planning-time cost of the Def 5.3 machinery.

#include <benchmark/benchmark.h>

#include "candidates/candidates.h"
#include "testing/random_plan.h"

namespace mpq {
namespace {

void BM_ComputeCandidatesPlanSize(benchmark::State& state) {
  RandomPlanOptions opts;
  opts.num_relations = static_cast<int>(state.range(0));
  opts.num_extra_ops = static_cast<int>(state.range(0)) * 2;
  auto sc = MakeRandomScenario(17, opts);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                                /*require_nonempty=*/false);
    benchmark::DoNotOptimize(cp);
  }
  state.counters["nodes"] = CountNodes(sc->plan.get());
}
BENCHMARK(BM_ComputeCandidatesPlanSize)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ComputeCandidatesSubjects(benchmark::State& state) {
  RandomPlanOptions opts;
  opts.num_relations = 4;
  opts.num_providers = static_cast<int>(state.range(0));
  auto sc = MakeRandomScenario(19, opts);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                                /*require_nonempty=*/false);
    benchmark::DoNotOptimize(cp);
  }
  state.counters["subjects"] = static_cast<double>(sc->subjects->size());
}
BENCHMARK(BM_ComputeCandidatesSubjects)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_MinRequiredView(benchmark::State& state) {
  auto sc = MakeRandomScenario(23);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  const RelationProfile& prof = sc->plan->profile;
  AttrSet needed = prof.vp;
  for (auto _ : state) {
    RelationProfile mv = MinRequiredView(prof, needed);
    benchmark::DoNotOptimize(mv);
  }
}
BENCHMARK(BM_MinRequiredView);

}  // namespace
}  // namespace mpq

BENCHMARK_MAIN();

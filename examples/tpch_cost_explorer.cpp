// TPC-H cost explorer: optimize one TPC-H query (argv[1], default Q3) under
// the three authorization scenarios of Sec 7 and print the chosen
// assignments and cost breakdowns.

#include <cstdio>
#include <cstdlib>

#include "algebra/plan_printer.h"
#include "assign/assignment.h"
#include "profile/propagate.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

using namespace mpq;

int main(int argc, char** argv) {
  int q = argc > 1 ? std::atoi(argv[1]) : 3;
  if (q < 1 || q > NumTpchQueries()) {
    std::printf("usage: %s [1..22]\n", argv[0]);
    return 1;
  }

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);
  auto plan = BuildTpchQuery(q, env);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  (void)DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{});
  (void)AnnotatePlan(plan->get(), env.catalog);

  std::printf("=== TPC-H Q%d ===\n%s\n", q,
              PrintPlan(plan->get(), env.catalog).c_str());

  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);
  SchemeMap schemes = AnalyzeSchemes(plan->get(), env.catalog, SchemeCaps{});
  CostModel cm(&env.catalog, &prices, &topo, &schemes);

  double ua_cost = 0;
  for (AuthScenario scenario :
       {AuthScenario::kUA, AuthScenario::kUAPenc, AuthScenario::kUAPmix}) {
    auto policy = MakeScenarioPolicy(env, scenario);
    if (!policy.ok()) continue;
    auto cp = ComputeCandidates(plan->get(), *policy);
    if (!cp.ok()) {
      std::printf("%s: %s\n", AuthScenarioName(scenario),
                  cp.status().ToString().c_str());
      continue;
    }
    AssignmentOptimizer opt(&*policy, &cm);
    auto r = opt.Optimize(plan->get(), *cp, env.user);
    if (!r.ok()) {
      std::printf("%s: %s\n", AuthScenarioName(scenario),
                  r.status().ToString().c_str());
      continue;
    }
    if (scenario == AuthScenario::kUA) ua_cost = r->exact_cost.total_usd();
    std::printf(
        "--- %-7s total=%.6f USD (cpu=%.6f io=%.6f net=%.6f, elapsed=%.2fs) "
        "normalized=%.3f\n",
        AuthScenarioName(scenario), r->exact_cost.total_usd(),
        r->exact_cost.cpu_usd, r->exact_cost.io_usd, r->exact_cost.net_usd,
        r->exact_cost.elapsed_s,
        ua_cost > 0 ? r->exact_cost.total_usd() / ua_cost : 1.0);
    std::printf("    assignment:");
    for (const PlanNode* n : PostOrder(plan->get())) {
      if (n->is_leaf()) continue;
      std::printf(" %d→%s", n->id,
                  env.subjects.Name(r->lambda.at(n->id)).c_str());
    }
    std::printf("\n    encrypted attrs: %s\n",
                r->extended.encrypted_attrs.ToString(env.catalog.attrs())
                    .c_str());
  }
  return 0;
}

// Quickstart: the paper's running example in ~60 lines of API use.
//
// Builds the Hosp ⋈ Ins query, declares the Fig 1(b) authorizations,
// computes candidates, picks an assignment, extends the plan with
// encryption/decryption, and prints everything.

#include <cstdio>

#include "algebra/plan_builder.h"
#include "algebra/plan_printer.h"
#include "assign/assignment.h"
#include "authz/policy.h"
#include "extend/keys.h"
#include "profile/propagate.h"
#include "sql/binder.h"

using namespace mpq;

int main() {
  // --- Catalog: two data authorities, one user, three providers.
  Catalog catalog;
  SubjectRegistry subjects;
  SubjectId H = *subjects.Register("H", SubjectKind::kAuthority);
  SubjectId I = *subjects.Register("I", SubjectKind::kAuthority);
  SubjectId U = *subjects.Register("U", SubjectKind::kUser);
  SubjectId X = *subjects.Register("X", SubjectKind::kProvider);
  SubjectId Y = *subjects.Register("Y", SubjectKind::kProvider);
  SubjectId Z = *subjects.Register("Z", SubjectKind::kProvider);

  using C = std::pair<std::string, DataType>;
  RelId hosp = *catalog.AddRelation(
      "Hosp",
      {C{"S", DataType::kInt64}, C{"B", DataType::kInt64},
       C{"D", DataType::kString}, C{"T", DataType::kString}},
      H, 1000);
  RelId ins = *catalog.AddRelation(
      "Ins", {C{"C", DataType::kInt64}, C{"P", DataType::kDouble}}, I, 800);

  // --- Authorizations [P,E] -> S (Fig 1(b)).
  Policy policy(&catalog, &subjects);
  auto set = [&](const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c)
      out.Insert(catalog.attrs().Find(std::string(1, *c)));
    return out;
  };
  (void)policy.Grant(hosp, H, set("SBDT"), {});
  (void)policy.Grant(hosp, I, set("B"), set("SDT"));
  (void)policy.Grant(hosp, U, set("SDT"), {});
  (void)policy.Grant(hosp, X, set("DT"), set("S"));
  (void)policy.Grant(hosp, Y, set("BDT"), set("S"));
  (void)policy.Grant(hosp, Z, set("ST"), set("D"));
  (void)policy.Grant(ins, H, set("C"), set("P"));
  (void)policy.Grant(ins, I, set("CP"), {});
  (void)policy.Grant(ins, U, set("CP"), {});
  (void)policy.Grant(ins, X, {}, set("CP"));
  (void)policy.Grant(ins, Y, set("P"), set("C"));
  (void)policy.Grant(ins, Z, set("C"), set("P"));

  // --- The query, straight from SQL.
  auto plan = PlanFromSql(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      catalog);
  if (!plan.ok()) {
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  (void)DerivePlaintextNeeds(plan->get(), catalog, SchemeCaps{});
  (void)AnnotatePlan(plan->get(), catalog);

  PrintOptions opts;
  opts.show_profiles = true;
  std::printf("=== Query plan with relation profiles (Fig 3) ===\n%s\n",
              PrintPlan(plan->get(), catalog, opts).c_str());

  // --- Candidates (Defs 5.2/5.3, Fig 6).
  auto cp = ComputeCandidates(plan->get(), policy);
  if (!cp.ok()) {
    std::printf("candidates error: %s\n", cp.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Assignment candidates per operation ===\n");
  for (const PlanNode* n : PostOrder(plan->get())) {
    if (n->is_leaf()) continue;
    std::printf("  node %d (%s): ", n->id,
                NodeLabel(n, catalog).c_str());
    cp->at(n->id).candidates.ForEach([&](AttrId s) {
      std::printf("%s ", subjects.Name(static_cast<SubjectId>(s)).c_str());
    });
    std::printf("\n");
  }

  // --- Cost-optimal assignment + minimally extended plan (Def 5.4, Fig 7).
  PricingTable prices = PricingTable::PaperDefaults(subjects);
  Topology topo = Topology::PaperDefaults(subjects);
  SchemeMap schemes = AnalyzeSchemes(plan->get(), catalog, SchemeCaps{});
  CostModel cm(&catalog, &prices, &topo, &schemes);
  AssignmentOptimizer opt(&policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, U);
  if (!r.ok()) {
    std::printf("optimizer error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintOptions ext_opts;
  ext_opts.assignment = &r->extended.assignment;
  ext_opts.subjects = &subjects;
  std::printf("\n=== Minimally extended authorized plan ===\n%s",
              PrintPlan(r->extended.plan.get(), catalog, ext_opts).c_str());
  std::printf("estimated cost: %.6f USD\n", r->exact_cost.total_usd());

  // --- Keys (Def 6.1).
  PlanKeys keys = DeriveQueryPlanKeys(r->extended);
  std::printf("\n=== Query plan keys ===\n%s",
              keys.ToString(catalog, subjects).c_str());
  return 0;
}

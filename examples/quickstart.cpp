// Quickstart: serve the paper's running example through QueryService.
//
// Declares the Fig 1(b) authorizations, loads a few rows of data, then
// serves the Hosp ⋈ Ins query through the full pipeline — parse, authorize,
// minimum-cost assignment, on-the-fly encryption, distributed execution —
// with the front half amortized by the sharded plan cache, and shows a
// policy revocation invalidating the cached plan via the policy epoch.

#include <cstdio>

#include "net/pricing.h"
#include "net/topology.h"
#include "service/query_service.h"

using namespace mpq;

int main() {
  // --- Catalog: two data authorities, one user, three providers.
  Catalog catalog;
  SubjectRegistry subjects;
  SubjectId H = *subjects.Register("H", SubjectKind::kAuthority);
  SubjectId I = *subjects.Register("I", SubjectKind::kAuthority);
  SubjectId U = *subjects.Register("U", SubjectKind::kUser);
  SubjectId X = *subjects.Register("X", SubjectKind::kProvider);
  SubjectId Y = *subjects.Register("Y", SubjectKind::kProvider);
  SubjectId Z = *subjects.Register("Z", SubjectKind::kProvider);
  (void)X;

  using C = std::pair<std::string, DataType>;
  RelId hosp = *catalog.AddRelation(
      "Hosp",
      {C{"S", DataType::kInt64}, C{"B", DataType::kInt64},
       C{"D", DataType::kString}, C{"T", DataType::kString}},
      H, 1000);
  RelId ins = *catalog.AddRelation(
      "Ins", {C{"C", DataType::kInt64}, C{"P", DataType::kDouble}}, I, 800);

  // --- Authorizations [P,E] -> S (Fig 1(b)).
  Policy policy(&catalog, &subjects);
  auto set = [&](const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c)
      out.Insert(catalog.attrs().Find(std::string(1, *c)));
    return out;
  };
  (void)policy.Grant(hosp, H, set("SBDT"), {});
  (void)policy.Grant(hosp, I, set("B"), set("SDT"));
  (void)policy.Grant(hosp, U, set("SDT"), {});
  (void)policy.Grant(hosp, X, set("DT"), set("S"));
  (void)policy.Grant(hosp, Y, set("BDT"), set("S"));
  (void)policy.Grant(hosp, Z, set("ST"), set("D"));
  (void)policy.Grant(ins, H, set("C"), set("P"));
  (void)policy.Grant(ins, I, set("CP"), {});
  (void)policy.Grant(ins, U, set("CP"), {});
  (void)policy.Grant(ins, X, {}, set("CP"));
  (void)policy.Grant(ins, Y, set("P"), set("C"));
  (void)policy.Grant(ins, Z, set("C"), set("P"));

  // --- A few rows: four patients (two stroke), matching insurance rows.
  Table hosp_data = MakeBaseTable(catalog.Get(hosp));
  Table ins_data = MakeBaseTable(catalog.Get(ins));
  {
    auto I64 = [](int64_t v) { return Cell(Value(v)); };
    auto Str = [](const char* s) { return Cell(Value(std::string(s))); };
    auto Dbl = [](double v) { return Cell(Value(v)); };
    hosp_data.AddRow({I64(100), I64(1970), Str("stroke"), Str("tpa")});
    hosp_data.AddRow({I64(101), I64(1985), Str("flu"), Str("rest")});
    hosp_data.AddRow({I64(102), I64(1960), Str("stroke"), Str("tpa")});
    hosp_data.AddRow({I64(103), I64(1990), Str("stroke"), Str("surgery")});
    ins_data.AddRow({I64(100), Dbl(120.0)});
    ins_data.AddRow({I64(101), Dbl(80.0)});
    ins_data.AddRow({I64(102), Dbl(200.0)});
    ins_data.AddRow({I64(103), Dbl(50.0)});
  }

  // --- The serving subsystem: sharded plan cache, sessions, metrics.
  PricingTable prices = PricingTable::PaperDefaults(subjects);
  Topology topo = Topology::PaperDefaults(subjects);
  ServiceConfig config;
  config.exec_threads = 2;
  QueryService service(&catalog, &subjects, &policy, &prices, &topo, config);
  service.LoadTable(hosp, &hosp_data);
  service.LoadTable(ins, &ins_data);

  Session session = *service.OpenSession("U");

  // --- Prepare once, execute repeatedly: the first execution pays the whole
  // front half (bind → authorize → candidates → optimize → keys), repeats
  // serve from the plan cache and only execute.
  auto stmt = service.Prepare(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100");
  if (!stmt.ok()) {
    std::printf("prepare error: %s\n", stmt.status().ToString().c_str());
    return 1;
  }

  for (int i = 0; i < 2; ++i) {
    auto r = service.Execute(*stmt, session);
    if (!r.ok()) {
      std::printf("execute error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Execution %d (%s) ===\n%s", i + 1,
                r->stats.cache == CacheOutcome::kHit ? "plan-cache hit"
                                                     : "cold: full front half",
                r->table.ToString().c_str());
    std::printf(
        "total %.3f ms (plan %.3f ms, exec %.3f ms), %llu transfer bytes, "
        "planned cost %.6f USD, policy epoch %llu\n\n",
        r->stats.total_s * 1e3, r->stats.plan_s * 1e3, r->stats.exec_s * 1e3,
        static_cast<unsigned long long>(r->stats.transfer_bytes),
        r->stats.planned_cost_usd,
        static_cast<unsigned long long>(r->stats.policy_epoch));
  }

  // --- A revocation bumps the policy epoch: the cached plan is unreachable
  // and the query re-authorizes — here, failing outright, since U may no
  // longer see the premiums its query aggregates.
  (void)policy.Revoke(ins, U);
  auto denied = service.Execute(*stmt, session);
  std::printf("=== After revoking U's grant on Ins ===\n%s\n",
              denied.ok() ? "unexpectedly served!"
                          : denied.status().ToString().c_str());

  (void)policy.Grant(ins, U, set("CP"), {});
  auto restored = service.Execute(*stmt, session);
  std::printf("\n=== After re-granting (fresh epoch, fresh plan) ===\n%s",
              restored.ok() ? restored->table.ToString().c_str()
                            : restored.status().ToString().c_str());

  std::printf("\n=== Service metrics ===\n%s\n", service.MetricsJson().c_str());
  return 0;
}

// Medical/insurance collaborative analytics: the paper's motivating scenario
// end-to-end WITH data — dispatch messages (Fig 8) and a distributed
// encrypted execution whose result is compared against plaintext execution.

#include <cstdio>

#include "algebra/plan_builder.h"
#include "algebra/plan_printer.h"
#include "common/rng.h"
#include "assign/assignment.h"
#include "exec/dispatch.h"
#include "exec/distributed.h"
#include "profile/propagate.h"
#include "sql/binder.h"

using namespace mpq;

namespace {

Table HospData(const Catalog& catalog, RelId hosp, int patients) {
  Table t = MakeBaseTable(catalog.Get(hosp));
  const char* diseases[] = {"stroke", "flu", "diabetes"};
  const char* treatments[] = {"tpa", "rest", "insulin", "surgery"};
  Rng rng(7);
  for (int i = 0; i < patients; ++i) {
    t.AddRow({Cell(Value(int64_t{1000 + i})),
              Cell(Value(
                  int64_t{1950 + static_cast<int64_t>(rng.Uniform(50))})),
              Cell(Value(std::string(diseases[rng.Uniform(3)]))),
              Cell(Value(std::string(treatments[rng.Uniform(4)])))});
  }
  return t;
}

Table InsData(const Catalog& catalog, RelId ins, int patients) {
  Table t = MakeBaseTable(catalog.Get(ins));
  Rng rng(13);
  for (int i = 0; i < patients; ++i) {
    t.AddRow({Cell(Value(int64_t{1000 + i})),
              Cell(Value(50.0 + static_cast<double>(rng.Uniform(200))))});
  }
  return t;
}

}  // namespace

int main() {
  Catalog catalog;
  SubjectRegistry subjects;
  SubjectId H = *subjects.Register("H", SubjectKind::kAuthority);
  SubjectId I = *subjects.Register("I", SubjectKind::kAuthority);
  SubjectId U = *subjects.Register("U", SubjectKind::kUser);
  SubjectId X = *subjects.Register("X", SubjectKind::kProvider);
  SubjectId Y = *subjects.Register("Y", SubjectKind::kProvider);
  (void)subjects.Register("Z", SubjectKind::kProvider);

  using C = std::pair<std::string, DataType>;
  RelId hosp = *catalog.AddRelation(
      "Hosp",
      {C{"S", DataType::kInt64}, C{"B", DataType::kInt64},
       C{"D", DataType::kString}, C{"T", DataType::kString}},
      H, 200);
  RelId ins = *catalog.AddRelation(
      "Ins", {C{"C", DataType::kInt64}, C{"P", DataType::kDouble}}, I, 200);

  Policy policy(&catalog, &subjects);
  auto set = [&](const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c)
      out.Insert(catalog.attrs().Find(std::string(1, *c)));
    return out;
  };
  (void)policy.Grant(hosp, H, set("SBDT"), {});
  (void)policy.Grant(hosp, U, set("SDT"), {});
  (void)policy.Grant(hosp, X, set("DT"), set("S"));
  (void)policy.Grant(hosp, Y, set("BDT"), set("S"));
  (void)policy.Grant(ins, I, set("CP"), {});
  (void)policy.Grant(ins, U, set("CP"), {});
  (void)policy.Grant(ins, X, {}, set("CP"));
  (void)policy.Grant(ins, Y, set("P"), set("C"));

  auto plan = PlanFromSql(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      catalog);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  (void)DerivePlaintextNeeds(plan->get(), catalog, SchemeCaps{});
  (void)AnnotatePlan(plan->get(), catalog);

  PricingTable prices = PricingTable::PaperDefaults(subjects);
  Topology topo = Topology::PaperDefaults(subjects);
  SchemeMap schemes = AnalyzeSchemes(plan->get(), catalog, SchemeCaps{});
  CostModel cm(&catalog, &prices, &topo, &schemes);
  auto cp = ComputeCandidates(plan->get(), policy);
  if (!cp.ok()) {
    std::printf("error: %s\n", cp.status().ToString().c_str());
    return 1;
  }
  AssignmentOptimizer opt(&policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, U);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return 1;
  }

  // Dispatch (Fig 8): signed + sealed sub-queries with attached keys.
  PlanKeys keys = DeriveQueryPlanKeys(r->extended);
  auto dispatch = BuildDispatch(r->extended, keys, policy, U);
  std::printf("=== Dispatch ===\n%s\n",
              dispatch->ToString(subjects).c_str());

  // Distributed encrypted execution.
  DistributedRuntime rt(&catalog, &subjects);
  rt.LoadTable(hosp, HospData(catalog, hosp, 200));
  rt.LoadTable(ins, InsData(catalog, ins, 200));
  rt.DistributeKeys(keys, U, 42);
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
  auto result = rt.Run(r->extended, U);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Result (delivered to U) ===\n%s\n",
              result->result.ToString().c_str());

  std::printf("=== Per-subject accounting ===\n");
  for (const auto& [s, st] : result->stats) {
    std::printf("  %-3s ops=%zu rows=%llu in=%lluB out=%lluB\n",
                subjects.Name(s).c_str(), st.ops_executed,
                static_cast<unsigned long long>(st.rows_produced),
                static_cast<unsigned long long>(st.bytes_in),
                static_cast<unsigned long long>(st.bytes_out));
  }
  std::printf("total transfer: %llu bytes over %zu messages\n",
              static_cast<unsigned long long>(result->total_transfer_bytes),
              result->num_messages);

  // Sanity: plaintext execution agrees.
  Table hosp_t = HospData(catalog, hosp, 200);
  Table ins_t = InsData(catalog, ins, 200);
  KeyRing ring;
  CryptoPlan crypto;
  ExecContext ctx;
  ctx.catalog = &catalog;
  ctx.base_tables[hosp] = &hosp_t;
  ctx.base_tables[ins] = &ins_t;
  ctx.keyring = &ring;
  ctx.crypto = &crypto;
  auto plain = ExecutePlan(plan->get(), &ctx);
  std::printf("\nplaintext reference rows: %zu (distributed: %zu) — %s\n",
              plain->num_rows(), result->result.num_rows(),
              plain->num_rows() == result->result.num_rows() ? "MATCH"
                                                             : "MISMATCH");
  return 0;
}

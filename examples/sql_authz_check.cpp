// SQL authorization checker: given a SQL query over the running-example
// schema (argv, or a default), prints each subject's authorization verdict
// for the query result and the candidate set per operation — a small policy
// debugging tool built on the public API.

#include <cstdio>

#include "algebra/plan_printer.h"
#include "assign/schemes.h"
#include "candidates/candidates.h"
#include "profile/propagate.h"
#include "sql/binder.h"

using namespace mpq;

int main(int argc, char** argv) {
  Catalog catalog;
  SubjectRegistry subjects;
  SubjectId H = *subjects.Register("H", SubjectKind::kAuthority);
  SubjectId I = *subjects.Register("I", SubjectKind::kAuthority);
  SubjectId U = *subjects.Register("U", SubjectKind::kUser);
  SubjectId X = *subjects.Register("X", SubjectKind::kProvider);
  SubjectId Y = *subjects.Register("Y", SubjectKind::kProvider);
  SubjectId Z = *subjects.Register("Z", SubjectKind::kProvider);

  using C = std::pair<std::string, DataType>;
  RelId hosp = *catalog.AddRelation(
      "Hosp",
      {C{"S", DataType::kInt64}, C{"B", DataType::kInt64},
       C{"D", DataType::kString}, C{"T", DataType::kString}},
      H, 1000);
  RelId ins = *catalog.AddRelation(
      "Ins", {C{"C", DataType::kInt64}, C{"P", DataType::kDouble}}, I, 800);

  Policy policy(&catalog, &subjects);
  auto set = [&](const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c)
      out.Insert(catalog.attrs().Find(std::string(1, *c)));
    return out;
  };
  (void)policy.Grant(hosp, H, set("SBDT"), {});
  (void)policy.Grant(hosp, I, set("B"), set("SDT"));
  (void)policy.Grant(hosp, U, set("SDT"), {});
  (void)policy.Grant(hosp, X, set("DT"), set("S"));
  (void)policy.Grant(hosp, Y, set("BDT"), set("S"));
  (void)policy.Grant(hosp, Z, set("ST"), set("D"));
  (void)policy.Grant(ins, H, set("C"), set("P"));
  (void)policy.Grant(ins, I, set("CP"), {});
  (void)policy.Grant(ins, U, set("CP"), {});
  (void)policy.Grant(ins, X, {}, set("CP"));
  (void)policy.Grant(ins, Y, set("P"), set("C"));
  (void)policy.Grant(ins, Z, set("C"), set("P"));

  std::string sql;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (i > 1) sql += " ";
      sql += argv[i];
    }
  } else {
    sql =
        "select T, avg(P) from Hosp join Ins on S = C "
        "where D = 'stroke' group by T having avg(P) > 100";
  }
  std::printf("query: %s\n\n", sql.c_str());

  auto plan = PlanFromSql(sql, catalog);
  if (!plan.ok()) {
    std::printf("parse/bind error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  (void)DerivePlaintextNeeds(plan->get(), catalog, SchemeCaps{});
  if (Status st = AnnotatePlan(plan->get(), catalog); !st.ok()) {
    std::printf("profile error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("plan:\n%s\n", PrintPlan(plan->get(), catalog).c_str());

  std::printf("authorization for the query RESULT, per subject:\n");
  for (const Subject& s : subjects.subjects()) {
    Status st = policy.CheckAuthorized(s.id, (*plan)->profile);
    std::printf("  %-3s %s\n", s.name.c_str(),
                st.ok() ? "AUTHORIZED" : st.ToString().c_str());
  }

  auto cp = ComputeCandidates(plan->get(), policy, /*require_nonempty=*/false);
  if (!cp.ok()) {
    std::printf("candidate error: %s\n", cp.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncandidates per operation:\n");
  for (const PlanNode* n : PostOrder(plan->get())) {
    if (n->is_leaf()) continue;
    std::printf("  [%d] %-24s ", n->id, NodeLabel(n, catalog).c_str());
    cp->at(n->id).candidates.ForEach([&](AttrId sid) {
      std::printf("%s ", subjects.Name(static_cast<SubjectId>(sid)).c_str());
    });
    std::printf("\n");
  }
  return 0;
}

// Tests for the distributed runtime: end-to-end encrypted execution of the
// paper's extended plans, selective key distribution, transfer accounting.

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "exec/distributed.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
  }

  Assignment Fig7a() {
    return Assignment{{PaperExample::kProject, ex_->H},
                      {PaperExample::kSelectD, ex_->H},
                      {PaperExample::kJoin, ex_->X},
                      {PaperExample::kGroupBy, ex_->X},
                      {PaperExample::kHaving, ex_->Y}};
  }

  /// Builds the runtime for an extended plan with keys distributed per
  /// Def 6.1 and schemes analyzed from the plan.
  std::unique_ptr<DistributedRuntime> MakeRuntime(const ExtendedPlan& ext) {
    auto rt = std::make_unique<DistributedRuntime>(&ex_->catalog,
                                                   &ex_->subjects);
    rt->LoadTable(ex_->hosp, ex_->HospData());
    rt->LoadTable(ex_->ins, ex_->InsData());
    PlanKeys keys = DeriveQueryPlanKeys(ext);
    rt->DistributeKeys(keys, ex_->U, /*seed=*/2024);
    SchemeMap schemes = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
    rt->SetCryptoPlan(MakeCryptoPlan(schemes, keys));
    return rt;
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
};

TEST_F(DistributedTest, Fig7aEndToEndMatchesPlaintext) {
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  auto rt = MakeRuntime(*ext);
  auto result = rt->Run(*ext, ex_->U);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Same answer as the plaintext run: one group (tpa, avg 160).
  ASSERT_EQ(result->result.num_rows(), 1u);
  AttrId t_attr = ex_->catalog.attrs().Find("T");
  AttrId p_attr = ex_->catalog.attrs().Find("P");
  int tc = result->result.ColIndex(t_attr);
  int pc = result->result.ColIndex(p_attr);
  ASSERT_GE(tc, 0);
  ASSERT_GE(pc, 0);
  EXPECT_EQ(result->result.row(0)[static_cast<size_t>(tc)].plain(),
            Value(std::string("tpa")));
  EXPECT_NEAR(result->result.row(0)[static_cast<size_t>(pc)].plain().AsDouble(),
              160.0, 1e-3);
}

TEST_F(DistributedTest, Fig7bEndToEndMatchesPlaintext) {
  Assignment fig7b{{PaperExample::kProject, ex_->H},
                   {PaperExample::kSelectD, ex_->H},
                   {PaperExample::kJoin, ex_->Z},
                   {PaperExample::kGroupBy, ex_->Z},
                   {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), fig7b, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  auto rt = MakeRuntime(*ext);
  auto result = rt->Run(*ext, ex_->U);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->result.num_rows(), 1u);
}

TEST_F(DistributedTest, StatsAccountPerSubject) {
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  auto rt = MakeRuntime(*ext);
  auto result = rt->Run(*ext, ex_->U);
  ASSERT_TRUE(result.ok());
  // H, I, X, Y all execute something.
  EXPECT_GT(result->stats.at(ex_->H).ops_executed, 0u);
  EXPECT_GT(result->stats.at(ex_->I).ops_executed, 0u);
  EXPECT_GT(result->stats.at(ex_->X).ops_executed, 0u);
  EXPECT_GT(result->stats.at(ex_->Y).ops_executed, 0u);
  // Data crossed subjects: H→X, I→X, X→Y, Y→U.
  EXPECT_GE(result->num_messages, 4u);
  EXPECT_GT(result->total_transfer_bytes, 0u);
  // X ships its aggregation output onward.
  EXPECT_GT(result->stats.at(ex_->X).bytes_out, 0u);
  EXPECT_GT(result->stats.at(ex_->U).bytes_in, 0u);
}

TEST_F(DistributedTest, MissingKeyBlocksExecution) {
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  // Runtime WITHOUT key distribution: H cannot encrypt S.
  DistributedRuntime rt(&ex_->catalog, &ex_->subjects);
  rt.LoadTable(ex_->hosp, ex_->HospData());
  rt.LoadTable(ex_->ins, ex_->InsData());
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  SchemeMap schemes = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
  auto result = rt.Run(*ext, ex_->U);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(DistributedTest, KeyringsFollowDef61Holders) {
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  auto rt = MakeRuntime(*ext);
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  for (const KeyGroup& g : keys.groups) {
    g.holders.ForEach([&](AttrId s) {
      EXPECT_TRUE(rt->keyring(static_cast<SubjectId>(s)).Has(g.key_id));
    });
  }
  // X holds no keys (it only computes over ciphertexts).
  EXPECT_EQ(rt->keyring(ex_->X).size(), 0u);
}

TEST_F(DistributedTest, AllUserPlanHasSingleHop) {
  Assignment all_user{{PaperExample::kProject, ex_->H},
                      {PaperExample::kSelectD, ex_->U},
                      {PaperExample::kJoin, ex_->U},
                      {PaperExample::kGroupBy, ex_->U},
                      {PaperExample::kHaving, ex_->U}};
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), all_user, *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  auto rt = MakeRuntime(*ext);
  auto result = rt->Run(*ext, ex_->U);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Transfers: H→U (after π/σ... σD at U: H→U once), I→U once.
  EXPECT_EQ(result->num_messages, 2u);
  ASSERT_EQ(result->result.num_rows(), 1u);
}

}  // namespace
}  // namespace mpq

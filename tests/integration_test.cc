// End-to-end integration tests on TPC-H: optimizer-chosen assignments,
// minimally extended plans, refined schemes, key distribution and distributed
// encrypted execution validated against plaintext execution.

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "exec/dispatch.h"
#include "exec/distributed.h"
#include "profile/propagate.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

struct Pipeline {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  TpchData db;
  PricingTable prices;
  Topology topo;

  Pipeline() {
    db = GenerateTpch(env, /*data_sf=*/0.0004, /*seed=*/11);
    prices = MakeScenarioPricing(env);
    topo = MakeScenarioTopology(env);
  }

  Result<size_t> PlaintextRows(const PlanPtr& plan) {
    KeyRing ring;
    CryptoPlan crypto;
    ExecContext ctx;
    ctx.catalog = &env.catalog;
    for (const auto& [rel, t] : db.tables) ctx.base_tables[rel] = &t;
    ctx.keyring = &ring;
    ctx.crypto = &crypto;
    MPQ_ASSIGN_OR_RETURN(Table t, ExecutePlan(plan.get(), &ctx));
    return t.num_rows();
  }

  /// Optimize under `scenario` and execute the extended plan distributed
  /// with refined schemes; returns (result rows, transfer bytes).
  Result<std::pair<size_t, uint64_t>> OptimizedRows(const PlanPtr& plan,
                                                    AuthScenario scenario) {
    MPQ_ASSIGN_OR_RETURN(Policy policy, MakeScenarioPolicy(env, scenario));
    MPQ_ASSIGN_OR_RETURN(CandidatePlan cp,
                         ComputeCandidates(plan.get(), policy));
    SchemeMap schemes = AnalyzeSchemes(plan.get(), env.catalog, SchemeCaps{});
    CostModel cm(&env.catalog, &prices, &topo, &schemes);
    AssignmentOptimizer opt(&policy, &cm);
    MPQ_ASSIGN_OR_RETURN(AssignmentResult r,
                         opt.Optimize(plan.get(), cp, env.user));
    MPQ_RETURN_NOT_OK(VerifyAuthorizedAssignment(r.extended, policy));

    PlanKeys keys = DeriveQueryPlanKeys(r.extended);
    DistributedRuntime rt(&env.catalog, &env.subjects);
    for (const auto& [rel, t] : db.tables) rt.LoadTable(rel, t);
    rt.DistributeKeys(keys, env.user, 2025);
    rt.SetCryptoPlan(MakeCryptoPlan(r.refined_schemes, keys));
    MPQ_ASSIGN_OR_RETURN(DistributedResult res, rt.Run(r.extended, env.user));
    return std::make_pair(res.result.num_rows(), res.total_transfer_bytes);
  }
};

class TpchEndToEnd : public ::testing::TestWithParam<int> {
 protected:
  static Pipeline& Pipe() {
    static Pipeline p;
    return p;
  }
};

TEST_P(TpchEndToEnd, UAPencDistributedMatchesPlaintext) {
  Pipeline& p = Pipe();
  auto plan = BuildTpchQuery(GetParam(), p.env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), p.env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), p.env.catalog).ok());
  auto reference = p.PlaintextRows(*plan);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto result = p.OptimizedRows(*plan, AuthScenario::kUAPenc);
  ASSERT_TRUE(result.ok()) << "Q" << GetParam() << ": "
                           << result.status().ToString();
  EXPECT_EQ(result->first, *reference) << "Q" << GetParam();
}

TEST_P(TpchEndToEnd, UAPmixDistributedMatchesPlaintext) {
  Pipeline& p = Pipe();
  auto plan = BuildTpchQuery(GetParam(), p.env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), p.env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), p.env.catalog).ok());
  auto reference = p.PlaintextRows(*plan);
  ASSERT_TRUE(reference.ok());
  auto result = p.OptimizedRows(*plan, AuthScenario::kUAPmix);
  ASSERT_TRUE(result.ok()) << "Q" << GetParam() << ": "
                           << result.status().ToString();
  EXPECT_EQ(result->first, *reference) << "Q" << GetParam();
}

// A representative cross-section: selection-heavy (6), join-chain (3, 10),
// attr-attr comparison (12), double aggregation (13), having (11, 18),
// min/max (2, 15), ne-predicate (16).
INSTANTIATE_TEST_SUITE_P(Queries, TpchEndToEnd,
                         ::testing::Values(2, 3, 6, 10, 11, 12, 13, 15, 16,
                                           18));

TEST(IntegrationTest, GreedyDecryptAppearsAtPlaintextAuthorizedSubject) {
  // Under UAPenc, aggregations over summed attributes land on a subject with
  // plaintext authorization, preceded by a decrypt of the transit-encrypted
  // attribute — the optimizer's decrypt-at-operator behavior.
  Pipeline p;
  auto plan = BuildTpchQuery(3, p.env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), p.env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), p.env.catalog).ok());
  auto policy = MakeScenarioPolicy(p.env, AuthScenario::kUAPenc);
  ASSERT_TRUE(policy.ok());
  auto cp = ComputeCandidates(plan->get(), *policy);
  ASSERT_TRUE(cp.ok());
  SchemeMap schemes = AnalyzeSchemes(plan->get(), p.env.catalog, SchemeCaps{});
  CostModel cm(&p.env.catalog, &p.prices, &p.topo, &schemes);
  AssignmentOptimizer opt(&*policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, p.env.user);
  ASSERT_TRUE(r.ok());

  // Every decrypt operation's assignee is plaintext-authorized for the
  // decrypted attributes (keys are only useful to authorized subjects).
  for (const PlanNode* n : PostOrder(r->extended.plan.get())) {
    if (n->kind != OpKind::kDecrypt) continue;
    SubjectId s = r->extended.assignment.at(n->id);
    EXPECT_TRUE(n->attrs.IsSubsetOf(policy->PlainView(s)))
        << "decrypt node " << n->id << " at non-authorized subject";
  }
}

TEST(IntegrationTest, RefinedSchemesNeverStrongerThanStatic) {
  // Refinement only weakens schemes (RND ≤ DET ≤ OPE ≤ HOM order is not a
  // strict lattice, but a transit-only attribute must end up RND).
  Pipeline p;
  auto plan = BuildTpchQuery(3, p.env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), p.env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), p.env.catalog).ok());
  auto policy = MakeScenarioPolicy(p.env, AuthScenario::kUAPenc);
  ASSERT_TRUE(policy.ok());
  auto cp = ComputeCandidates(plan->get(), *policy);
  ASSERT_TRUE(cp.ok());
  SchemeMap schemes = AnalyzeSchemes(plan->get(), p.env.catalog, SchemeCaps{});
  CostModel cm(&p.env.catalog, &p.prices, &p.topo, &schemes);
  AssignmentOptimizer opt(&*policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, p.env.user);
  ASSERT_TRUE(r.ok());
  // l_extendedprice is summed at a plaintext-authorized subject after
  // decryption, so when it transits encrypted it is RND, not Paillier.
  AttrId lep = p.env.catalog.attrs().Find("l_extendedprice");
  auto it = r->refined_schemes.find(lep);
  if (it != r->refined_schemes.end()) {
    EXPECT_NE(it->second, EncScheme::kPaillier);
  }
}

TEST(IntegrationTest, DispatchCoversEveryAssignee) {
  Pipeline p;
  auto plan = BuildTpchQuery(5, p.env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), p.env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), p.env.catalog).ok());
  auto policy = MakeScenarioPolicy(p.env, AuthScenario::kUAPenc);
  ASSERT_TRUE(policy.ok());
  auto cp = ComputeCandidates(plan->get(), *policy);
  ASSERT_TRUE(cp.ok());
  SchemeMap schemes = AnalyzeSchemes(plan->get(), p.env.catalog, SchemeCaps{});
  CostModel cm(&p.env.catalog, &p.prices, &p.topo, &schemes);
  AssignmentOptimizer opt(&*policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, p.env.user);
  ASSERT_TRUE(r.ok());
  PlanKeys keys = DeriveQueryPlanKeys(r->extended);
  auto dispatch = BuildDispatch(r->extended, keys, *policy, p.env.user);
  ASSERT_TRUE(dispatch.ok());

  std::set<SubjectId> assignees, recipients;
  for (const auto& [id, s] : r->extended.assignment) assignees.insert(s);
  for (const DispatchMessage& m : dispatch->messages) recipients.insert(m.to);
  EXPECT_EQ(assignees, recipients);
  // Every message verifies under the user's signature.
  for (const DispatchMessage& m : dispatch->messages) {
    std::string payload = m.sub_query;
    for (uint64_t k : m.key_ids) payload += "|" + std::to_string(k);
    EXPECT_TRUE(VerifySignature(p.env.user, payload, m.signature));
  }
}

}  // namespace
}  // namespace mpq

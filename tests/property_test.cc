// Property-based tests over random scenarios: the paper's theorems as
// executable properties.
//
//   Thm 3.1 — profile monotonicity along the plan;
//   Thm 5.1 — candidate monotonicity;
//   Thm 5.2 — every λ drawn from Λ can be made authorized by plan extension
//             (and extension rejects non-candidates);
//   Thm 5.3 — the minimally extended plan makes λ authorized.
// Plus an execution-equivalence property: extended encrypted plans compute
// the same result as the original plaintext plan.

#include <gtest/gtest.h>

#include "candidates/candidates.h"
#include "common/rng.h"
#include "exec/dispatch.h"
#include "exec/distributed.h"
#include "extend/extend.h"
#include "extend/keys.h"
#include "profile/propagate.h"
#include "testing/random_plan.h"

namespace mpq {
namespace {

class RandomScenarioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomScenarioTest, Theorem31ProfileMonotonicity) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  EXPECT_TRUE(CheckProfileMonotonicity(sc->plan.get(), *sc->catalog).ok());
}

TEST_P(RandomScenarioTest, Theorem51CandidateMonotonicity) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_TRUE(CheckCandidateMonotonicity(sc->plan.get(), *cp).ok());
}

TEST_P(RandomScenarioTest, Theorem52And53ExtensionAuthorizesCandidates) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok());

  // Draw a few random λ from Λ and check that the minimally extended plan
  // makes each of them authorized (Thm 5.2(ii) + Thm 5.3(i)).
  Rng rng(GetParam() * 77 + 1);
  for (int trial = 0; trial < 3; ++trial) {
    Assignment lambda;
    bool feasible = true;
    for (const PlanNode* n : PostOrder(sc->plan.get())) {
      if (n->is_leaf()) continue;
      std::vector<SubjectId> cands;
      cp->at(n->id).candidates.ForEach(
          [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });
      if (cands.empty()) {
        feasible = false;
        break;
      }
      lambda[n->id] = cands[rng.Uniform(cands.size())];
    }
    if (!feasible) break;
    auto ext = BuildMinimallyExtendedPlan(sc->plan.get(), lambda, *sc->policy,
                                          sc->user);
    ASSERT_TRUE(ext.ok()) << "seed " << GetParam() << ": "
                          << ext.status().ToString();
    EXPECT_TRUE(VerifyAuthorizedAssignment(*ext, *sc->policy).ok())
        << "seed " << GetParam();
    EXPECT_TRUE(CheckProfileMonotonicity(ext->plan.get(), *sc->catalog).ok());
  }
}

TEST_P(RandomScenarioTest, NonCandidatesAreRejected) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok());
  // Find a (node, subject) pair outside Λ and check rejection (Thm 5.2(i)).
  for (const PlanNode* n : PostOrder(sc->plan.get())) {
    if (n->is_leaf()) continue;
    for (const Subject& s : sc->subjects->subjects()) {
      if (cp->at(n->id).candidates.Contains(s.id)) continue;
      Assignment lambda;
      bool ok = true;
      for (const PlanNode* m : PostOrder(sc->plan.get())) {
        if (m->is_leaf()) continue;
        if (m->id == n->id) {
          lambda[m->id] = s.id;
          continue;
        }
        std::vector<SubjectId> cands;
        cp->at(m->id).candidates.ForEach(
            [&](AttrId c) { cands.push_back(static_cast<SubjectId>(c)); });
        if (cands.empty()) {
          ok = false;
          break;
        }
        lambda[m->id] = cands[0];
      }
      if (!ok) continue;
      auto ext = BuildMinimallyExtendedPlan(sc->plan.get(), lambda,
                                            *sc->policy, sc->user);
      EXPECT_FALSE(ext.ok());
      return;  // one counterexample per seed suffices
    }
  }
}

TEST_P(RandomScenarioTest, ExtendedExecutionMatchesPlaintext) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());

  // Generate small random tables for the scenario's relations.
  Rng rng(GetParam() ^ 0xfeed);
  std::map<RelId, Table> data = MakeRandomData(*sc, GetParam() ^ 0xfeed);

  // Plaintext reference execution.
  KeyRing empty_ring;
  CryptoPlan empty_crypto;
  ExecContext ref_ctx;
  ref_ctx.catalog = sc->catalog.get();
  for (const auto& [rel, t] : data) ref_ctx.base_tables[rel] = &t;
  ref_ctx.keyring = &empty_ring;
  ref_ctx.crypto = &empty_crypto;
  Result<Table> reference = ExecutePlan(sc->plan.get(), &ref_ctx);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Random candidate assignment, extended and executed distributed.
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok());
  Assignment lambda;
  for (const PlanNode* n : PostOrder(sc->plan.get())) {
    if (n->is_leaf()) continue;
    std::vector<SubjectId> cands;
    cp->at(n->id).candidates.ForEach(
        [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });
    if (cands.empty()) GTEST_SKIP() << "no candidates under this policy";
    lambda[n->id] = cands[rng.Uniform(cands.size())];
  }
  auto ext = BuildMinimallyExtendedPlan(sc->plan.get(), lambda, *sc->policy,
                                        sc->user);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();

  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  SchemeMap schemes =
      AnalyzeSchemes(sc->plan.get(), *sc->catalog, SchemeCaps{});
  DistributedRuntime rt(sc->catalog.get(), sc->subjects.get());
  for (const auto& [rel, t] : data) rt.LoadTable(rel, t);
  rt.DistributeKeys(keys, sc->user, GetParam());
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
  auto result = rt.Run(*ext, sc->user);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Same cardinality; and when fully plaintext at the root, same multiset of
  // first-column values (row order may differ through hashing).
  EXPECT_EQ(result->result.num_rows(), reference->num_rows());
}

TEST_P(RandomScenarioTest, DispatchFragmentsAndSignaturesConsistent) {
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok());
  Rng rng(GetParam() * 131 + 5);
  Assignment lambda;
  for (const PlanNode* n : PostOrder(sc->plan.get())) {
    if (n->is_leaf()) continue;
    std::vector<SubjectId> cands;
    cp->at(n->id).candidates.ForEach(
        [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });
    if (cands.empty()) GTEST_SKIP() << "no candidates under this policy";
    lambda[n->id] = cands[rng.Uniform(cands.size())];
  }
  auto ext = BuildMinimallyExtendedPlan(sc->plan.get(), lambda, *sc->policy,
                                        sc->user);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  auto dispatch = BuildDispatch(*ext, keys, *sc->policy, sc->user);
  ASSERT_TRUE(dispatch.ok()) << dispatch.status().ToString();

  // Invariants: the root fragment goes to the root's assignee; every
  // upstream reference names an existing fragment; every signature verifies;
  // every key a subject must hold (Def 6.1) is attached to its message.
  ASSERT_FALSE(dispatch->messages.empty());
  EXPECT_EQ(dispatch->messages.front().to,
            ext->assignment.at(ext->plan->id));
  for (const DispatchMessage& m : dispatch->messages) {
    for (int up : m.upstream_fragments) {
      EXPECT_GE(up, 0);
      EXPECT_LT(up, static_cast<int>(dispatch->messages.size()));
      EXPECT_NE(up, m.fragment_id);
    }
    std::string payload = m.sub_query;
    for (uint64_t k : m.key_ids) payload += "|" + std::to_string(k);
    EXPECT_TRUE(VerifySignature(sc->user, payload, m.signature));
  }
  for (const KeyGroup& g : keys.groups) {
    g.holders.ForEach([&](AttrId sid) {
      bool delivered = false;
      for (const DispatchMessage& m : dispatch->messages) {
        if (m.to != static_cast<SubjectId>(sid)) continue;
        for (uint64_t k : m.key_ids) delivered |= (k == g.key_id);
      }
      EXPECT_TRUE(delivered) << "key " << g.key_id << " not delivered";
    });
  }
}

TEST_P(RandomScenarioTest, KeyDistributionObeysAuthorizations) {
  // Def 6.1 discussion: key distribution obeys authorizations — every holder
  // of a key is plaintext-authorized for at least one attribute it protects
  // (it performs encryption or decryption over plaintext values).
  auto sc = MakeRandomScenario(GetParam());
  ASSERT_TRUE(sc.ok());
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  ASSERT_TRUE(cp.ok());
  Assignment lambda;
  for (const PlanNode* n : PostOrder(sc->plan.get())) {
    if (n->is_leaf()) continue;
    std::vector<SubjectId> cands;
    cp->at(n->id).candidates.ForEach(
        [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });
    if (cands.empty()) GTEST_SKIP() << "no candidates under this policy";
    lambda[n->id] = cands[0];
  }
  auto ext = BuildMinimallyExtendedPlan(sc->plan.get(), lambda, *sc->policy,
                                        sc->user);
  ASSERT_TRUE(ext.ok());
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  for (const KeyGroup& g : keys.groups) {
    g.holders.ForEach([&](AttrId sid) {
      AttrSet plain = sc->policy->PlainView(static_cast<SubjectId>(sid));
      EXPECT_TRUE(g.attrs.Intersects(plain))
          << "subject holds key k" << g.key_id
          << " without plaintext authorization over any protected attribute";
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace mpq

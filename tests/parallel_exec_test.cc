// Concurrency determinism tests: ExecutePlan and DistributedRuntime must
// produce identical results — and identical transfer accounting — at 1, 2,
// and 8 threads on the paper's running example. Batch size is forced small
// so the 4-row example actually spans multiple batches.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "assign/assignment.h"
#include "common/thread_pool.h"
#include "exec/distributed.h"
#include "exec/executor.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

void ExpectCellsIdentical(const Cell& a, const Cell& b, const char* where) {
  ASSERT_EQ(a.is_plain(), b.is_plain()) << where;
  if (a.is_plain()) {
    EXPECT_EQ(a.plain(), b.plain()) << where;
  } else {
    EXPECT_EQ(a.enc(), b.enc()) << where;
  }
}

void ExpectTablesIdentical(const Table& a, const Table& b, const char* where) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << where;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << where;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    EXPECT_EQ(a.columns()[i].attr, b.columns()[i].attr) << where;
    EXPECT_EQ(a.columns()[i].encrypted, b.columns()[i].encrypted) << where;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ExpectCellsIdentical(a.row(r)[c], b.row(r)[c], where);
    }
  }
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
    hosp_ = ex_->HospData();
    ins_ = ex_->InsData();
    keyring_.Add(MakeKeyMaterial(1, 0));
  }

  /// Runs the plaintext paper query through ExecutePlan with `threads`
  /// workers (0 = no pool) and a tiny batch size.
  Table RunSingleEngine(size_t threads) {
    CryptoPlan crypto;
    ExecContext ctx;
    ctx.catalog = &ex_->catalog;
    ctx.base_tables[ex_->hosp] = &hosp_;
    ctx.base_tables[ex_->ins] = &ins_;
    ctx.keyring = &keyring_;
    ctx.dispatcher_keyring = &keyring_;
    ctx.crypto = &crypto;
    ctx.batch_size = 2;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Result<Table> t = ExecutePlan(plan_.get(), &ctx);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(t).value() : Table();
  }

  /// Runs the Fig 7(a) encrypted extended plan end-to-end with `threads`
  /// workers (0 = no pool).
  DistributedResult RunDistributed(const ExtendedPlan& ext, size_t threads) {
    DistributedRuntime rt(&ex_->catalog, &ex_->subjects);
    rt.LoadTable(ex_->hosp, ex_->HospData());
    rt.LoadTable(ex_->ins, ex_->InsData());
    PlanKeys keys = DeriveQueryPlanKeys(ext);
    rt.DistributeKeys(keys, ex_->U, /*seed=*/2024);
    SchemeMap schemes = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
    rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
    rt.SetBatchSize(2);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      rt.SetThreadPool(pool.get());
    }
    Result<DistributedResult> r = rt.Run(ext, ex_->U);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : DistributedResult();
  }

  Result<ExtendedPlan> Fig7aExtended() {
    Assignment fig7a{{PaperExample::kProject, ex_->H},
                     {PaperExample::kSelectD, ex_->H},
                     {PaperExample::kJoin, ex_->X},
                     {PaperExample::kGroupBy, ex_->X},
                     {PaperExample::kHaving, ex_->Y}};
    return BuildMinimallyExtendedPlan(plan_.get(), fig7a, *ex_->policy,
                                      ex_->U);
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
  Table hosp_, ins_;
  KeyRing keyring_;
};

TEST_F(ParallelExecTest, ExecutePlanDeterministicAcrossThreadCounts) {
  Table reference = RunSingleEngine(0);
  ASSERT_EQ(reference.num_rows(), 1u);  // (tpa, avg 160)
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Table t = RunSingleEngine(threads);
    ExpectTablesIdentical(reference, t, "single-engine");
  }
}

TEST_F(ParallelExecTest, ExecutePlanParallelMatchesExpectedAnswer) {
  Table t = RunSingleEngine(8);
  ASSERT_EQ(t.num_rows(), 1u);
  PlanBuilder b = ex_->builder();
  int t_col = t.ColIndex(b.A("T"));
  int p_col = t.ColIndex(b.A("P"));
  ASSERT_GE(t_col, 0);
  ASSERT_GE(p_col, 0);
  EXPECT_EQ(t.row(0)[static_cast<size_t>(t_col)].plain(),
            Value(std::string("tpa")));
  EXPECT_NEAR(t.row(0)[static_cast<size_t>(p_col)].plain().AsDouble(), 160.0,
              1e-9);
}

TEST_F(ParallelExecTest, DistributedDeterministicAcrossThreadCounts) {
  Result<ExtendedPlan> ext = Fig7aExtended();
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  DistributedResult reference = RunDistributed(*ext, 0);
  ASSERT_EQ(reference.result.num_rows(), 1u);
  EXPECT_GT(reference.total_transfer_bytes, 0u);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    DistributedResult r = RunDistributed(*ext, threads);
    ExpectTablesIdentical(reference.result, r.result, "distributed");
    EXPECT_EQ(reference.total_transfer_bytes, r.total_transfer_bytes)
        << threads << " threads";
    EXPECT_EQ(reference.num_messages, r.num_messages) << threads
                                                      << " threads";
    // Per-subject accounting is exact under concurrency, not just the total.
    ASSERT_EQ(reference.stats.size(), r.stats.size());
    auto it = reference.stats.begin();
    auto jt = r.stats.begin();
    for (; it != reference.stats.end(); ++it, ++jt) {
      EXPECT_EQ(it->first, jt->first);
      EXPECT_EQ(it->second.ops_executed, jt->second.ops_executed);
      EXPECT_EQ(it->second.rows_produced, jt->second.rows_produced);
      EXPECT_EQ(it->second.bytes_in, jt->second.bytes_in);
      EXPECT_EQ(it->second.bytes_out, jt->second.bytes_out);
    }
  }
}

TEST_F(ParallelExecTest, DistributedParallelKeyEnforcementStillFails) {
  Result<ExtendedPlan> ext = Fig7aExtended();
  ASSERT_TRUE(ext.ok());
  // No key distribution: the first encrypting subject must fail, and the
  // error must surface through the async scheduler.
  DistributedRuntime rt(&ex_->catalog, &ex_->subjects);
  rt.LoadTable(ex_->hosp, ex_->HospData());
  rt.LoadTable(ex_->ins, ex_->InsData());
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  SchemeMap schemes = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
  ThreadPool pool(4);
  rt.SetThreadPool(&pool);
  rt.SetBatchSize(2);
  Result<DistributedResult> r = rt.Run(*ext, ex_->U);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ParallelExecTest, EncryptedOperatorsDeterministicUnderBatching) {
  // DET-encrypted select + join keys, evaluated at several thread counts,
  // with ciphertext-level comparison of the (still encrypted) outputs.
  PlanBuilder b = ex_->builder();
  CryptoPlan crypto;
  crypto.scheme_of[b.A("D")] = EncScheme::kDeterministic;
  PlanPtr p = Select(Encrypt(b.Rel("Hosp"), b.Set("D")),
                     {b.Pv("D", CmpOp::kEq, Value(std::string("stroke")))});
  PlanPtr plan = std::move(FinishPlan(std::move(p), ex_->catalog)).value();

  auto run = [&](size_t threads) {
    ExecContext ctx;
    ctx.catalog = &ex_->catalog;
    ctx.base_tables[ex_->hosp] = &hosp_;
    ctx.base_tables[ex_->ins] = &ins_;
    ctx.keyring = &keyring_;
    ctx.dispatcher_keyring = &keyring_;
    ctx.crypto = &crypto;
    ctx.batch_size = 1;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx.pool = pool.get();
    }
    Result<Table> t = ExecutePlan(plan.get(), &ctx);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? std::move(t).value() : Table();
  };

  Table reference = run(0);
  ASSERT_EQ(reference.num_rows(), 3u);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    Table t = run(threads);
    ExpectTablesIdentical(reference, t, "encrypted-select");
  }
}

}  // namespace
}  // namespace mpq

// Differential testing: ≥200 seeded random plans/policies, each executed by
// the full distributed-encrypted pipeline (candidates → minimum-cost
// authorized assignment → minimally extended plan → key distribution →
// SimNet execution) and compared bit-for-bit (order-insensitively) against
// the single-site plaintext oracle — with and without injected faults.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/failover.h"
#include "net/simnet.h"
#include "obs/trace.h"
#include "testing/random_plan.h"
#include "testing/reference_exec.h"

namespace mpq {
namespace {

constexpr uint64_t kNumScenarios = 200;

/// Everything one seed's differential run needs.
struct DiffCase {
  RandomScenario sc;
  std::map<RelId, Table> data;
  PricingTable prices;
  Topology topo;
  std::vector<std::string> oracle_rows;
};

Result<DiffCase> MakeCase(uint64_t seed) {
  DiffCase c;
  // Slightly denser plaintext grants than the default distribution: with
  // 0.35/0.45 only ~28% of random policies authorize any provider for any
  // internal operation, leaving the fault matrix mostly vacuous; 0.50/0.45
  // lifts that to ~80% while keeping plenty of encrypted execution.
  RandomPlanOptions opts;
  opts.provider_plain_prob = 0.50;
  opts.provider_enc_prob = 0.45;
  MPQ_ASSIGN_OR_RETURN(c.sc, MakeRandomScenario(seed, opts));
  c.data = MakeRandomData(c.sc, seed ^ 0xfeed);
  // Computation at the user or an authority is priced two orders of
  // magnitude above the providers, so whenever the random policy authorizes
  // any provider the optimizer routes work there — which is the path the
  // fault injection must exercise.
  c.prices.SetDefault(PriceList{10.0, 0.0002, 0.001});
  for (const Subject& s : c.sc.subjects->subjects()) {
    if (s.kind == SubjectKind::kProvider) {
      c.prices.Set(s.id, PriceList{0.05, 0.0002, 0.001});
    }
  }
  c.topo = Topology::PaperDefaults(*c.sc.subjects);

  ReferenceExecutor oracle(c.sc.catalog.get());
  for (const auto& [rel, t] : c.data) oracle.LoadTable(rel, &t);
  MPQ_ASSIGN_OR_RETURN(Table reference, oracle.Run(c.sc.plan.get()));
  c.oracle_rows = CanonicalRows(reference);
  return c;
}

/// Runs the distributed pipeline of `c` against `net`.
Result<FailoverOutcome> RunDistributed(DiffCase& c, SimNet* net,
                                       NetPolicy net_policy = {}) {
  FailoverConfig cfg;
  cfg.net_policy = net_policy;
  FailoverExecutor exec(c.sc.catalog.get(), c.sc.subjects.get(),
                        c.sc.policy.get(), &c.prices, &c.topo, net, cfg);
  for (const auto& [rel, t] : c.data) exec.LoadTable(rel, &t);
  return exec.Execute(c.sc.plan.get(), c.sc.user);
}

/// The provider step of the optimizer-chosen extended plan a seeded pick
/// crashes; kInvalidSubject when the assignment touches no provider.
std::pair<int, SubjectId> PickVictim(const DiffCase& c,
                                     const FailoverOutcome& fault_free,
                                     uint64_t seed) {
  std::vector<std::pair<int, SubjectId>> provider_steps;
  for (const auto& [node_id, subject] :
       fault_free.assignment.extended.assignment) {
    if (c.sc.subjects->Get(subject).kind == SubjectKind::kProvider) {
      provider_steps.emplace_back(node_id, subject);
    }
  }
  if (provider_steps.empty()) return {-1, kInvalidSubject};
  // Deterministic pick; sort first (the assignment map's order is not
  // specified).
  std::sort(provider_steps.begin(), provider_steps.end());
  Rng rng(seed * 31 + 7);
  return provider_steps[rng.Uniform(provider_steps.size())];
}

TEST(DifferentialTest, ColumnarEngineMatchesRowOracleOnEveryScenario) {
  // Layout differential: the columnar engine (single-site, plaintext, at
  // 0/2/8 worker threads) against the row-major oracle, on every random
  // scenario — plus a wire round-trip of the result through the per-column
  // fragment serialization. Failures here isolate the storage/operator
  // rewrite with no crypto or network in the loop.
  ThreadPool two(2), eight(8);
  for (uint64_t seed = 1; seed <= kNumScenarios; ++seed) {
    auto c = MakeCase(seed);
    ASSERT_TRUE(c.ok()) << "seed " << seed << ": " << c.status().ToString();
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &two, &eight}) {
      ExecContext ctx;
      ctx.catalog = c->sc.catalog.get();
      for (const auto& [rel, t] : c->data) ctx.base_tables[rel] = &t;
      ctx.pool = pool;
      Result<Table> t = ExecutePlan(c->sc.plan.get(), &ctx);
      ASSERT_TRUE(t.ok()) << "seed " << seed << ": " << t.status().ToString();
      ASSERT_EQ(CanonicalRows(*t), c->oracle_rows)
          << "seed " << seed << ": columnar engine diverges from the "
          << "row-path oracle at "
          << (pool == nullptr ? 0 : pool->size()) << " threads";
      Result<Table> wired = Table::DeserializeColumns(t->SerializeColumns());
      ASSERT_TRUE(wired.ok()) << "seed " << seed;
      ASSERT_EQ(CanonicalRows(*wired), c->oracle_rows)
          << "seed " << seed << ": column serialization round-trip diverges";
      if (pool == &eight) {
        // Tracing differential: the instrumented engine never reads the
        // trace, so a traced 8-thread run must be bit-identical on the
        // wire to the untraced one.
        QueryTrace trace(MakeTraceId(seed, seed ^ 0xace, 0), nullptr);
        ExecContext traced_ctx;
        traced_ctx.catalog = c->sc.catalog.get();
        for (const auto& [rel, tab] : c->data) {
          traced_ctx.base_tables[rel] = &tab;
        }
        traced_ctx.pool = pool;
        traced_ctx.trace = &trace;
        Result<Table> traced = ExecutePlan(c->sc.plan.get(), &traced_ctx);
        ASSERT_TRUE(traced.ok()) << "seed " << seed;
        ASSERT_EQ(traced->SerializeColumns(), t->SerializeColumns())
            << "seed " << seed << ": traced run is not bit-identical";
        EXPECT_FALSE(trace.Spans().empty()) << "seed " << seed;
      }
    }
  }
}

TEST(DifferentialTest, DistributedEncryptedMatchesOracleWithAndWithoutFaults) {
  size_t fault_injected = 0;
  size_t no_provider = 0;
  for (uint64_t seed = 1; seed <= kNumScenarios; ++seed) {
    auto c = MakeCase(seed);
    ASSERT_TRUE(c.ok()) << "seed " << seed << ": " << c.status().ToString();

    // Fault-free: the encrypted distributed run equals the oracle.
    SimNet clean(c->sc.subjects.get());
    auto fault_free = RunDistributed(*c, &clean);
    ASSERT_TRUE(fault_free.ok())
        << "seed " << seed << ": " << fault_free.status().ToString();
    EXPECT_EQ(fault_free->failovers, 0u) << "seed " << seed;
    ASSERT_EQ(CanonicalRows(fault_free->result.result), c->oracle_rows)
        << "seed " << seed << ": fault-free distributed run diverges";

    // Faulted: crash a provider of the chosen assignment at its dispatch
    // step; recovery must still equal the oracle.
    auto [step, victim] = PickVictim(*c, *fault_free, seed);
    if (victim == kInvalidSubject) {
      no_provider++;
      continue;
    }
    fault_injected++;
    SimNet net(c->sc.subjects.get());
    FaultPlan faults;
    faults.seed = seed;
    faults.crash_at_step[victim] = step;
    net.SetFaultPlan(faults);
    auto recovered = RunDistributed(*c, &net);
    ASSERT_TRUE(recovered.ok())
        << "seed " << seed << " crash@" << step << ": "
        << recovered.status().ToString();
    EXPECT_GE(recovered->failovers, 1u) << "seed " << seed;
    ASSERT_EQ(CanonicalRows(recovered->result.result), c->oracle_rows)
        << "seed " << seed << ": recovered run diverges from the oracle";
  }
  // The matrix must actually exercise failover: most random policies
  // authorize (and the biased pricing selects) a provider somewhere.
  EXPECT_GT(fault_injected, (3 * kNumScenarios) / 5)
      << no_provider << " scenarios had no provider step";
}

TEST(DifferentialTest, LossyLinksWithRetriesStillMatchOracle) {
  // A 30%-drop network under a 5-attempt budget: most edges succeed after
  // retries; when an edge exhausts its budget the run fails over. Either
  // way the answer must equal the oracle whenever the query completes (a
  // non-excludable dead edge — e.g. authority→user in an all-user plan — is
  // a legitimate kUnavailable).
  NetPolicy policy;
  policy.max_attempts = 5;
  size_t completed = 0, unavailable = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    auto c = MakeCase(seed);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    SimNet net(c->sc.subjects.get());
    FaultPlan faults;
    faults.seed = seed * 1313;
    faults.drop_prob = 0.3;
    net.SetFaultPlan(faults);
    auto r = RunDistributed(*c, &net, policy);
    if (r.ok()) {
      completed++;
      ASSERT_EQ(CanonicalRows(r->result.result), c->oracle_rows)
          << "seed " << seed << " (failovers=" << r->failovers << ")";
    } else {
      ASSERT_EQ(r.status().code(), StatusCode::kUnavailable)
          << "seed " << seed << ": " << r.status().ToString();
      unavailable++;
    }
  }
  // Retry budgets absorb a 0.3 drop rate almost always (p(exhaust) per edge
  // ≈ 0.24%); the suite is deterministic, so this is a fixed count.
  EXPECT_GT(completed, 55u) << unavailable << " runs unavailable";
}

}  // namespace
}  // namespace mpq

// Tests for the SQL lexer, parser and binder, plus property tests over
// byte-mutated inputs: the whole SQL front door returns Status — it never
// crashes or throws — and normalization is idempotent.

#include <gtest/gtest.h>

#include "algebra/plan_printer.h"
#include "common/rng.h"
#include "paper_example.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

TEST(LexerTest, TokenizesKeywordsAndSymbols) {
  auto toks = Lex("SELECT a, b FROM t WHERE a >= 10 AND b <> 'x'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->front().kind, TokKind::kKeyword);
  EXPECT_EQ(toks->front().text, "SELECT");
  EXPECT_EQ(toks->back().kind, TokKind::kEnd);
}

TEST(LexerTest, CaseInsensitiveKeywords) {
  auto toks = Lex("select A fRoM t");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[1].text, "A");
  EXPECT_EQ((*toks)[2].text, "FROM");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto toks = Lex("1 2.5 -3");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].number_is_int);
  EXPECT_EQ((*toks)[0].int_value, 1);
  EXPECT_FALSE((*toks)[1].number_is_int);
  EXPECT_DOUBLE_EQ((*toks)[1].number, 2.5);
  EXPECT_EQ((*toks)[2].int_value, -3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("select 'unterminated").ok());
  EXPECT_FALSE(Lex("select a ; b").ok());
}

TEST(ParserTest, ParsesFullQuery) {
  auto ast = ParseSelect(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->items.size(), 2u);
  EXPECT_FALSE(ast->items[0].is_aggregate);
  EXPECT_TRUE(ast->items[1].is_aggregate);
  EXPECT_EQ(ast->items[1].func, AggFunc::kAvg);
  ASSERT_EQ(ast->tables.size(), 2u);
  EXPECT_EQ(ast->tables[1].on.size(), 1u);
  EXPECT_EQ(ast->where.size(), 1u);
  EXPECT_EQ(ast->group_by.size(), 1u);
  EXPECT_EQ(ast->having.size(), 1u);
  EXPECT_EQ(ast->having[0].lhs, "P");
}

TEST(ParserTest, CountStarAndAliases) {
  auto ast = ParseSelect("select count(*) as n, sum(x) from t");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->items[0].count_star);
  EXPECT_EQ(ast->items[0].alias, "n");
  EXPECT_EQ(ast->items[1].func, AggFunc::kSum);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseSelect("from t").ok());
  EXPECT_FALSE(ParseSelect("select from t").ok());
  EXPECT_FALSE(ParseSelect("select a").ok());
  EXPECT_FALSE(ParseSelect("select a from t extra").ok());
  EXPECT_FALSE(ParseSelect("select a from t where a ==").ok());
  EXPECT_FALSE(ParseSelect("select min(*) from t").ok());
  EXPECT_FALSE(ParseSelect("select a from t join s").ok());
}

TEST(NormalizeTest, IdempotentOnValidQueries) {
  const char* queries[] = {
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      "SELECT a FROM t WHERE a >= 10 AND b <> 'x'",
      "select count(*) as n, sum(x) from t group by y",
      "select a from t where a < 2.5e3 and b > -7",
  };
  for (const char* q : queries) {
    auto once = NormalizeSql(q);
    ASSERT_TRUE(once.ok()) << q;
    auto twice = NormalizeSql(*once);
    ASSERT_TRUE(twice.ok()) << *once;
    EXPECT_EQ(*twice, *once) << q;
  }
}

TEST(SqlFuzzTest, LexParseNormalizeAreTotalOn10kMutatedInputs) {
  // 10k seeded byte-level mutations of well-formed queries. The property:
  // every front-door entry point returns a Status — no crash, no throw, no
  // sanitizer finding — and whatever NormalizeSql accepts it normalizes to
  // a fixed point.
  const std::vector<std::string> corpus = {
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      "select count(*) as n, sum(x) from t group by y having sum(x) > 3",
      "select a, b from r join s on a = c where b >= 1.5 and a <> 'zz'",
      "select x from t where x < 9223372036854775807",
  };
  Rng rng(424242);
  size_t normalized_ok = 0;
  for (int i = 0; i < 10000; ++i) {
    std::string s = corpus[rng.Uniform(corpus.size())];
    int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations && !s.empty(); ++m) {
      size_t pos = rng.Uniform(s.size() + 1);
      char byte = static_cast<char>(rng.Uniform(256));
      switch (rng.Uniform(3)) {
        case 0:  // replace
          if (pos < s.size()) s[pos] = byte;
          break;
        case 1:  // insert
          s.insert(s.begin() + static_cast<long>(pos), byte);
          break;
        default:  // delete
          if (pos < s.size()) s.erase(s.begin() + static_cast<long>(pos));
          break;
      }
    }

    // Totality: these calls either succeed or return an error Status.
    auto tokens = Lex(s);
    auto ast = ParseSelect(s);
    auto normalized = NormalizeSql(s);
    if (tokens.ok() && !tokens->empty()) {
      EXPECT_EQ(tokens->back().kind, TokKind::kEnd);
    }
    if (normalized.ok()) {
      normalized_ok++;
      // Idempotence: the canonical form re-lexes and is its own normal form.
      auto again = NormalizeSql(*normalized);
      ASSERT_TRUE(again.ok())
          << "normalized output does not re-lex: " << *normalized;
      EXPECT_EQ(*again, *normalized) << "input: " << s;
    }
    (void)ast;
  }
  // Sanity: byte mutations leave plenty of lexable strings — the property
  // must not pass vacuously.
  EXPECT_GT(normalized_ok, 1000u);
}

TEST(ParserTest, ParsesInsertStatement) {
  auto stmt = ParseStatement(
      "insert into Hosp (S, D) values (1, 'flu'), (2, NULL)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert.table, "Hosp");
  ASSERT_EQ(stmt->insert.columns.size(), 2u);
  ASSERT_EQ(stmt->insert.rows.size(), 2u);
  EXPECT_EQ(stmt->insert.rows[0][0], Value(int64_t{1}));
  EXPECT_EQ(stmt->insert.rows[0][1], Value(std::string("flu")));
  EXPECT_TRUE(stmt->insert.rows[1][1].is_null());
}

TEST(ParserTest, ParsesUpdateAndDelete) {
  auto upd = ParseStatement("update Hosp set T = 'x', B = 7 where S = 1");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  ASSERT_EQ(upd->kind, StatementKind::kUpdate);
  EXPECT_EQ(upd->update.sets.size(), 2u);
  EXPECT_EQ(upd->update.where.size(), 1u);

  auto del = ParseStatement("delete from Hosp");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  ASSERT_EQ(del->kind, StatementKind::kDelete);
  EXPECT_TRUE(del->del.where.empty());

  // A SELECT still routes through the same entry point.
  auto sel = ParseStatement("select S from Hosp");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ(sel->kind, StatementKind::kSelect);
}

TEST(ParserTest, RejectsMalformedWrites) {
  EXPECT_FALSE(ParseStatement("insert into Hosp").ok());
  EXPECT_FALSE(ParseStatement("insert into Hosp values (1, 2) garbage").ok());
  EXPECT_FALSE(ParseStatement("update Hosp where S = 1").ok());
  EXPECT_FALSE(ParseStatement("delete Hosp").ok());
  EXPECT_FALSE(ParseStatement("update Hosp set T = S").ok());
}

TEST(NormalizeTest, WriteStatementsNormalize) {
  auto n = NormalizeSql(
      "  Insert   INTO Hosp VALUES( 1 ,'flu' )  ");
  ASSERT_TRUE(n.ok());
  auto again = NormalizeSql(*n);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *n);
  auto n2 = NormalizeSql("UPDATE Hosp SET T='x' WHERE S=1");
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*NormalizeSql(*n2), *n2);
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakePaperExample(); }
  std::unique_ptr<testing::PaperExample> ex_;
};

TEST_F(BinderTest, BindsPaperQueryToExpectedShape) {
  auto plan = PlanFromSql(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      ex_->catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Root is the having selection, below it the group-by, then the join.
  EXPECT_EQ((*plan)->kind, OpKind::kSelect);
  EXPECT_EQ((*plan)->child(0)->kind, OpKind::kGroupBy);
  EXPECT_EQ((*plan)->child(0)->child(0)->kind, OpKind::kJoin);
  // Projection pushed into the Hosp leaf (B is not referenced).
  std::string text = PrintPlan(plan->get(), ex_->catalog);
  EXPECT_NE(text.find("π"), std::string::npos);
  EXPECT_EQ(text.find("B"), std::string::npos);
}

TEST_F(BinderTest, SingleRelationPredicatesPushedDown) {
  auto plan = PlanFromSql(
      "select S from Hosp join Ins on S = C where D = 'stroke'",
      ex_->catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The σ on D sits below the join, on the Hosp side.
  const PlanNode* join = plan->get();
  while (join->kind != OpKind::kJoin) join = join->child(0);
  bool found_select_below_join = false;
  for (const PlanNode* n : PostOrder(join)) {
    if (n->kind == OpKind::kSelect) found_select_below_join = true;
  }
  EXPECT_TRUE(found_select_below_join);
}

TEST_F(BinderTest, CrossRelationWherePredicateStaysAboveJoin) {
  auto plan = PlanFromSql("select S from Hosp join Ins on S = C where B < P",
                          ex_->catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // B<P references both relations: applied above the join.
  const PlanNode* n = plan->get();
  while (n->kind == OpKind::kProject) n = n->child(0);
  EXPECT_EQ(n->kind, OpKind::kSelect);
  EXPECT_EQ(n->child(0)->kind, OpKind::kJoin);
}

TEST_F(BinderTest, UnknownNamesRejected) {
  EXPECT_EQ(PlanFromSql("select S from Nope", ex_->catalog).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(PlanFromSql("select Zz from Hosp", ex_->catalog).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, CountStarInternsOutputAttr) {
  auto plan =
      PlanFromSql("select D, count(*) as n from Hosp group by D", ex_->catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(ex_->catalog.attrs().Find("n"), kInvalidAttr);
}

TEST_F(BinderTest, BoundPlanExecutes) {
  auto plan = PlanFromSql(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      ex_->catalog);
  ASSERT_TRUE(plan.ok());
  Table hosp = ex_->HospData();
  Table ins = ex_->InsData();
  KeyRing ring;
  CryptoPlan crypto;
  ExecContext ctx;
  ctx.catalog = &ex_->catalog;
  ctx.base_tables[ex_->hosp] = &hosp;
  ctx.base_tables[ex_->ins] = &ins;
  ctx.keyring = &ring;
  ctx.crypto = &crypto;
  Result<Table> t = ExecutePlan(plan->get(), &ctx);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST_F(BinderTest, BindsInsertWithColumnListAndNullPadding) {
  auto stmt = ParseStatement("insert into Hosp (S, D) values (9, 'flu')");
  ASSERT_TRUE(stmt.ok());
  auto bound = BindWrite(*stmt, ex_->catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->kind, StatementKind::kInsert);
  EXPECT_EQ(bound->rel, ex_->hosp);
  ASSERT_EQ(bound->rows.size(), 1u);
  // Full-width row in schema order (S,B,D,T): absent columns are NULL.
  ASSERT_EQ(bound->rows[0].size(), 4u);
  EXPECT_EQ(bound->rows[0][0], Value(int64_t{9}));
  EXPECT_TRUE(bound->rows[0][1].is_null());
  EXPECT_EQ(bound->rows[0][2], Value(std::string("flu")));
  EXPECT_TRUE(bound->rows[0][3].is_null());
  // Inserts write the whole schema regardless of the column list.
  EXPECT_EQ(bound->written.size(), 4u);
}

TEST_F(BinderTest, BindWriteValidatesNamesTypesAndArity) {
  auto bad_rel = ParseStatement("insert into Nope values (1)");
  ASSERT_TRUE(bad_rel.ok());
  EXPECT_EQ(BindWrite(*bad_rel, ex_->catalog).status().code(),
            StatusCode::kNotFound);

  auto bad_col = ParseStatement("update Hosp set Q = 1");
  ASSERT_TRUE(bad_col.ok());
  EXPECT_EQ(BindWrite(*bad_col, ex_->catalog).status().code(),
            StatusCode::kNotFound);

  auto bad_type = ParseStatement("update Hosp set B = 'text'");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_EQ(BindWrite(*bad_type, ex_->catalog).status().code(),
            StatusCode::kInvalidArgument);

  auto bad_arity = ParseStatement("insert into Hosp values (1, 2)");
  ASSERT_TRUE(bad_arity.ok());
  EXPECT_EQ(BindWrite(*bad_arity, ex_->catalog).status().code(),
            StatusCode::kInvalidArgument);

  auto dup = ParseStatement("insert into Hosp (S, S) values (1, 2)");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(BindWrite(*dup, ex_->catalog).status().code(),
            StatusCode::kInvalidArgument);

  // Int literals widen into double columns.
  auto widen = ParseStatement("update Ins set P = 5 where C = 100");
  ASSERT_TRUE(widen.ok());
  auto bound = BindWrite(*widen, ex_->catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_TRUE(bound->sets[0].second.is_double());
  // The filter's attrs land in the read set, the SET column in written.
  EXPECT_EQ(bound->written.size(), 1u);
  EXPECT_EQ(bound->read.size(), 1u);
}

}  // namespace
}  // namespace mpq

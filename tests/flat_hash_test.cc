// Tests for the flat-hash engine core (common/flat_hash.h) and its
// join/group-by integration: collision storms, mid-stream resizes,
// tombstone-free backward-shift deletion, and bit-identical engine output
// through the typed and byte key paths at 1/2/8 threads against the
// row-major oracle.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan_builder.h"
#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "testing/reference_exec.h"

namespace mpq {
namespace {

// ------------------------------------------------------------- the index ---

/// A tiny reference map over (key -> id) driving FlatHashIndex through the
/// caller-owned-arrays protocol the engine uses.
struct KeyedIndex {
  FlatHashIndex index;
  std::vector<uint64_t> keys;
  /// Hash with deliberately few distinct values when `mod` is small, to
  /// force probe chains.
  uint64_t mod;

  explicit KeyedIndex(uint64_t hash_mod = 0) : mod(hash_mod) {}

  uint64_t HashOf(uint64_t key) const {
    return mod == 0 ? HashMix64(key) : key % mod;
  }
  uint32_t Insert(uint64_t key) {
    return index.FindOrInsert(
        HashOf(key), [&](uint32_t id) { return keys[id] == key; },
        [&] {
          keys.push_back(key);
          return static_cast<uint32_t>(keys.size() - 1);
        });
  }
  uint32_t Find(uint64_t key) const {
    return index.Find(HashOf(key),
                      [&](uint32_t id) { return keys[id] == key; });
  }
  bool Erase(uint64_t key) {
    uint32_t id = Find(key);
    if (id == FlatHashIndex::kNotFound) return false;
    return index.Erase(HashOf(key),
                       [&](uint32_t cand) { return cand == id; });
  }
};

TEST(FlatHashIndexTest, InsertAssignsDenseIdsInInsertionOrder) {
  KeyedIndex m;
  EXPECT_EQ(m.Insert(100), 0u);
  EXPECT_EQ(m.Insert(200), 1u);
  EXPECT_EQ(m.Insert(100), 0u);  // existing key keeps its id
  EXPECT_EQ(m.Insert(300), 2u);
  EXPECT_EQ(m.index.size(), 3u);
  EXPECT_EQ(m.Find(200), 1u);
  EXPECT_EQ(m.Find(999), FlatHashIndex::kNotFound);
}

TEST(FlatHashIndexTest, ResizeMidStreamKeepsEveryEntry) {
  KeyedIndex m;
  constexpr uint64_t kN = 10000;  // forces ~10 doublings from 16 slots
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(m.Insert(k * 7919 + 1), static_cast<uint32_t>(k));
    // Spot-check an early key across every growth step.
    ASSERT_EQ(m.Find(1), 0u) << "after " << k << " inserts";
  }
  EXPECT_EQ(m.index.size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(m.Find(k * 7919 + 1), static_cast<uint32_t>(k));
  }
}

TEST(FlatHashIndexTest, CollisionStormProbesThroughOneChain) {
  // Every key hashes to the same value: the table degenerates to one long
  // linear-probe chain and must still resolve every key by equality.
  KeyedIndex m(/*hash_mod=*/1);
  constexpr uint64_t kN = 1000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(m.Insert(k), static_cast<uint32_t>(k));
  }
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(m.Find(k), static_cast<uint32_t>(k));
  }
  EXPECT_EQ(m.Find(kN + 1), FlatHashIndex::kNotFound);
}

TEST(FlatHashIndexTest, BackwardShiftEraseLeavesNoTombstones) {
  // A colliding cluster: erasing the chain head must shift the rest back
  // so later probes still find them (a tombstone scheme would also pass
  // this, so additionally check that erased slots are truly reusable by
  // re-inserting forever without growth).
  KeyedIndex m(/*hash_mod=*/4);
  for (uint64_t k = 0; k < 8; ++k) m.Insert(k);
  EXPECT_TRUE(m.Erase(0));   // head of the densest chain
  EXPECT_FALSE(m.Erase(0));  // already gone
  EXPECT_EQ(m.Find(0), FlatHashIndex::kNotFound);
  for (uint64_t k = 1; k < 8; ++k) {
    ASSERT_EQ(m.Find(k), static_cast<uint32_t>(k)) << "lost key " << k;
  }
  EXPECT_EQ(m.index.size(), 7u);

  // Erase/insert churn at a fixed population (a rolling window of 8 live
  // keys, all colliding): with tombstones the table would fill with dead
  // slots and be forced to grow or degrade; backward shifting keeps the
  // capacity constant and every live key reachable forever.
  KeyedIndex churn(/*hash_mod=*/4);
  std::vector<uint64_t> live;
  for (uint64_t k = 0; k < 8; ++k) {
    churn.Insert(k);
    live.push_back(k);
  }
  size_t churn_cap = churn.index.capacity();
  for (uint64_t round = 8; round < 10008; ++round) {
    ASSERT_TRUE(churn.Erase(live.front()));
    live.erase(live.begin());
    churn.Insert(round);
    live.push_back(round);
    ASSERT_EQ(churn.index.size(), 8u);
  }
  for (uint64_t k : live) {
    ASSERT_NE(churn.Find(k), FlatHashIndex::kNotFound);
  }
  EXPECT_EQ(churn.index.capacity(), churn_cap);
}

TEST(FlatHashIndexTest, EraseMiddleOfWrappedChainIsFound) {
  // Chain that wraps around the table end: all keys collide, erase from
  // the middle, every survivor must remain reachable.
  KeyedIndex m(/*hash_mod=*/1);
  for (uint64_t k = 0; k < 12; ++k) m.Insert(k);
  EXPECT_TRUE(m.Erase(5));
  EXPECT_TRUE(m.Erase(9));
  for (uint64_t k = 0; k < 12; ++k) {
    if (k == 5 || k == 9) {
      EXPECT_EQ(m.Find(k), FlatHashIndex::kNotFound);
    } else {
      ASSERT_EQ(m.Find(k), static_cast<uint32_t>(k));
    }
  }
  EXPECT_EQ(m.index.size(), 10u);
}

TEST(ByteArenaTest, SpansStayAddressableAcrossGrowth) {
  ByteArena arena;
  std::vector<std::pair<size_t, std::string>> entries;
  for (int i = 0; i < 1000; ++i) {
    std::string s = "key-" + std::to_string(i * 37);
    entries.emplace_back(arena.Append(s.data(), s.size()), s);
  }
  for (const auto& [off, s] : entries) {
    EXPECT_EQ(arena.View(off, s.size()), s);
  }
}

// ----------------------------------------------- engine-level determinism ---

/// A two-table scenario with every typed key flavour (int64, double,
/// string incl. duplicates and NULLs) plus a heterogeneous kCell column to
/// force the byte fallback.
class HashPathEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    left_rel_ = *catalog_.AddRelation(
        "L",
        {{"lk", DataType::kInt64},
         {"lname", DataType::kString},
         {"lx", DataType::kDouble}},
        /*owner=*/0, /*base_rows=*/64);
    right_rel_ = *catalog_.AddRelation(
        "R",
        {{"rk", DataType::kInt64},
         {"rname", DataType::kString},
         {"rv", DataType::kDouble}},
        /*owner=*/0, /*base_rows=*/256);
    left_ = MakeBaseTable(catalog_.Get(left_rel_));
    right_ = MakeBaseTable(catalog_.Get(right_rel_));
    for (int i = 0; i < 64; ++i) {
      std::vector<Cell> row;
      row.push_back(i % 7 == 3 ? Cell(Value::Null())
                               : Cell(Value(int64_t{i % 16})));
      row.push_back(Cell(Value("n" + std::to_string(i % 5))));
      row.push_back(Cell(Value(static_cast<double>(i % 4) * 0.5)));
      left_.AddRow(std::move(row));
    }
    for (int j = 0; j < 256; ++j) {
      std::vector<Cell> row;
      row.push_back(j % 11 == 5 ? Cell(Value::Null())
                                : Cell(Value(int64_t{j % 24})));
      row.push_back(Cell(Value("n" + std::to_string(j % 7))));
      row.push_back(Cell(Value(static_cast<double>(j % 9) * 0.25)));
      right_.AddRow(std::move(row));
    }
  }

  Result<Table> RunEngine(const PlanNode* plan, size_t threads) {
    ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.base_tables[left_rel_] = &left_;
    ctx.base_tables[right_rel_] = &right_;
    ctx.batch_size = 16;  // several batches even on these small tables
    ThreadPool pool(threads);
    ctx.pool = threads > 0 ? &pool : nullptr;
    return ExecutePlan(plan, &ctx);
  }

  /// Engine output must be bit-identical (serialized bytes, i.e. including
  /// row order) at 1, 2, and 8 threads, and canonically equal to the
  /// independent row-major oracle.
  void ExpectDeterministicAndOracleEqual(const PlanPtr& plan) {
    Result<Table> t1 = RunEngine(plan.get(), 0);
    ASSERT_TRUE(t1.ok()) << t1.status().ToString();
    std::string wire1 = t1->SerializeColumns();
    for (size_t threads : {2u, 8u}) {
      Result<Table> tn = RunEngine(plan.get(), threads);
      ASSERT_TRUE(tn.ok()) << tn.status().ToString();
      EXPECT_EQ(tn->SerializeColumns(), wire1)
          << "row order changed at " << threads << " threads";
    }
    ReferenceExecutor oracle(&catalog_);
    oracle.LoadTable(left_rel_, &left_);
    oracle.LoadTable(right_rel_, &right_);
    Result<Table> ref = oracle.Run(plan.get());
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_EQ(CanonicalRows(*ref), CanonicalRows(*t1));
  }

  Catalog catalog_;
  RelId left_rel_ = kInvalidRel, right_rel_ = kInvalidRel;
  Table left_, right_;
};

TEST_F(HashPathEngineTest, TypedInt64JoinMatchesOracleAtAnyThreadCount) {
  PlanBuilder b(&catalog_);
  PlanPtr p = Join(b.Rel("L"), b.Rel("R"), {b.Pa("lk", CmpOp::kEq, "rk")});
  Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExpectDeterministicAndOracleEqual(*fp);
}

TEST_F(HashPathEngineTest, NegativeKeysJoinWithoutNullWord) {
  // Regression: with no NULLs and no dictionary columns the key words have
  // no null/miss word, and a negative int64 key sets bit 63 of the last
  // word — which must not be mistaken for a probe miss.
  Catalog cat;
  RelId lrel = *cat.AddRelation("NL", {{"k", DataType::kInt64}}, 0, 4);
  RelId rrel = *cat.AddRelation("NR", {{"j", DataType::kInt64}}, 0, 4);
  Table lt = MakeBaseTable(cat.Get(lrel));
  Table rt = MakeBaseTable(cat.Get(rrel));
  for (int64_t v : {-5, -1, 2, 7}) {
    lt.AddRow({Cell(Value(v))});
    rt.AddRow({Cell(Value(v))});
  }
  PlanBuilder b(&cat);
  PlanPtr p = Join(b.Rel("NL"), b.Rel("NR"), {b.Pa("k", CmpOp::kEq, "j")});
  Result<PlanPtr> fp = FinishPlan(std::move(p), cat);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExecContext ctx;
  ctx.catalog = &cat;
  ctx.base_tables[lrel] = &lt;
  ctx.base_tables[rrel] = &rt;
  Result<Table> out = ExecutePlan(fp->get(), &ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 4u);  // every key matches itself exactly once
}

TEST_F(HashPathEngineTest, DictStringJoinMatchesOracleAtAnyThreadCount) {
  PlanBuilder b(&catalog_);
  PlanPtr p =
      Join(b.Rel("L"), b.Rel("R"), {b.Pa("lname", CmpOp::kEq, "rname")});
  Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExpectDeterministicAndOracleEqual(*fp);
}

TEST_F(HashPathEngineTest, MultiColumnJoinWithNullKeysMatchesOracle) {
  // NULL join keys match NULL on the other side (the 'N' byte-key rule);
  // the typed path must reproduce that through its null-bit word.
  PlanBuilder b(&catalog_);
  PlanPtr p = Join(b.Rel("L"), b.Rel("R"),
                   {b.Pa("lk", CmpOp::kEq, "rk"),
                    b.Pa("lname", CmpOp::kEq, "rname")});
  Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExpectDeterministicAndOracleEqual(*fp);
}

TEST_F(HashPathEngineTest, SeparatorLadenStringKeysCannotAlias) {
  // Multi-column string keys whose content embeds the old 0x1f separator
  // byte and tag letters: the concatenated ("x\x1fSy", "z") and
  // ("x", "y\x1fSz") tuples used to alias under separator-joined byte
  // keys. The length-suffixed encoding (and the typed word tuples) treat
  // them as the distinct tuples they are — identically in join, group-by,
  // and the row oracle.
  Catalog cat;
  RelId lrel = *cat.AddRelation(
      "AL", {{"a1", DataType::kString}, {"a2", DataType::kString}}, 0, 2);
  RelId rrel = *cat.AddRelation(
      "AR", {{"b1", DataType::kString}, {"b2", DataType::kString}}, 0, 2);
  Table lt = MakeBaseTable(cat.Get(lrel));
  Table rt = MakeBaseTable(cat.Get(rrel));
  lt.AddRow({Cell(Value(std::string("x\x1fSy"))),
             Cell(Value(std::string("z")))});
  lt.AddRow({Cell(Value(std::string("p"))), Cell(Value(std::string("q")))});
  rt.AddRow({Cell(Value(std::string("x"))),
             Cell(Value(std::string("y\x1fSz")))});
  rt.AddRow({Cell(Value(std::string("p"))), Cell(Value(std::string("q")))});
  PlanBuilder b(&cat);
  PlanPtr p = Join(b.Rel("AL"), b.Rel("AR"),
                   {b.Pa("a1", CmpOp::kEq, "b1"),
                    b.Pa("a2", CmpOp::kEq, "b2")});
  Result<PlanPtr> fp = FinishPlan(std::move(p), cat);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExecContext ctx;
  ctx.catalog = &cat;
  ctx.base_tables[lrel] = &lt;
  ctx.base_tables[rrel] = &rt;
  Result<Table> out = ExecutePlan(fp->get(), &ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 1u);  // only ("p","q") matches

  ReferenceExecutor oracle(&cat);
  oracle.LoadTable(lrel, &lt);
  oracle.LoadTable(rrel, &rt);
  Result<Table> ref = oracle.Run(fp->get());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(CanonicalRows(*ref), CanonicalRows(*out));

  // And the byte path (forced via a heterogeneous column) agrees.
  lt.col_mut(0).DemoteToCells();
  Result<Table> bytes = ExecutePlan(fp->get(), &ctx);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(CanonicalRows(*bytes), CanonicalRows(*out));
}

TEST_F(HashPathEngineTest, GroupByEveryKeyFlavourMatchesOracle) {
  for (const char* key_cols : {"lk", "lname", "lx", "lk,lname,lx"}) {
    PlanBuilder b(&catalog_);
    PlanPtr p = GroupBy(b.Rel("L"), b.Set(key_cols),
                        {Aggregate::Make(AggFunc::kSum, b.A("lx")),
                         Aggregate::Make(AggFunc::kMin, b.A("lname")),
                         Aggregate::Make(AggFunc::kCount, b.A("lk"))});
    Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
    ASSERT_TRUE(fp.ok()) << fp.status().ToString();
    SCOPED_TRACE(key_cols);
    ExpectDeterministicAndOracleEqual(*fp);
  }
}

TEST_F(HashPathEngineTest, GlobalAggregateOverEmptyAndNonEmptyInput) {
  PlanBuilder b(&catalog_);
  PlanPtr p = GroupBy(b.Rel("L"), AttrSet(),
                      {Aggregate::Make(AggFunc::kSum, b.A("lx")),
                       Aggregate::Make(AggFunc::kMax, b.A("lk"))});
  Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  ExpectDeterministicAndOracleEqual(*fp);

  // Empty input: select everything away first.
  PlanBuilder b2(&catalog_);
  PlanPtr p2 = Select(b2.Rel("L"),
                      {b2.Pv("lx", CmpOp::kLt, Value(-1.0))});
  p2 = GroupBy(std::move(p2), AttrSet(),
               {Aggregate::Make(AggFunc::kSum, b2.A("lx"))});
  Result<PlanPtr> fp2 = FinishPlan(std::move(p2), catalog_);
  ASSERT_TRUE(fp2.ok()) << fp2.status().ToString();
  Result<Table> empty = RunEngine(fp2->get(), 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
}

TEST_F(HashPathEngineTest, ByteFallbackViaHeterogeneousColumnMatchesTyped) {
  // Demote L.lk to the kCell rep (mixed content would do the same); the
  // group-by must take the byte path and still produce the same result the
  // typed path produced from the typed layout.
  PlanBuilder b(&catalog_);
  PlanPtr p = GroupBy(b.Rel("L"), b.Set("lk"),
                      {Aggregate::Make(AggFunc::kSum, b.A("lx"))});
  Result<PlanPtr> fp = FinishPlan(std::move(p), catalog_);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  Result<Table> typed = RunEngine(fp->get(), 0);
  ASSERT_TRUE(typed.ok());

  left_.col_mut(0).DemoteToCells();
  ASSERT_EQ(left_.col(0).rep(), ColumnRep::kCell);
  Result<Table> bytes = RunEngine(fp->get(), 0);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(CanonicalRows(*typed), CanonicalRows(*bytes));
  ExpectDeterministicAndOracleEqual(*fp);
}

}  // namespace
}  // namespace mpq

// Tests for sub-query dispatch (Fig 8): fragmentation, SQL rendering, key
// attachment, signatures.

#include <gtest/gtest.h>

#include "exec/dispatch.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
    Assignment fig7a{{PaperExample::kProject, ex_->H},
                     {PaperExample::kSelectD, ex_->H},
                     {PaperExample::kJoin, ex_->X},
                     {PaperExample::kGroupBy, ex_->X},
                     {PaperExample::kHaving, ex_->Y}};
    auto ext =
        BuildMinimallyExtendedPlan(plan_.get(), fig7a, *ex_->policy, ex_->U);
    ASSERT_TRUE(ext.ok()) << ext.status().ToString();
    ext_ = std::make_unique<ExtendedPlan>(std::move(*ext));
    keys_ = DeriveQueryPlanKeys(*ext_);
    auto d = BuildDispatch(*ext_, keys_, *ex_->policy, ex_->U);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dispatch_ = std::make_unique<DispatchPlan>(std::move(*d));
  }

  const DispatchMessage* MessageFor(SubjectId s) {
    for (const DispatchMessage& m : dispatch_->messages) {
      if (m.to == s) return &m;
    }
    return nullptr;
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
  std::unique_ptr<ExtendedPlan> ext_;
  PlanKeys keys_;
  std::unique_ptr<DispatchPlan> dispatch_;
};

TEST_F(DispatchTest, OneFragmentPerAssigneeRun) {
  // Fig 7(a): fragments for Y (having), X (join+γ), H (π+σ+enc), I (enc).
  EXPECT_EQ(dispatch_->messages.size(), 4u);
  EXPECT_NE(MessageFor(ex_->Y), nullptr);
  EXPECT_NE(MessageFor(ex_->X), nullptr);
  EXPECT_NE(MessageFor(ex_->H), nullptr);
  EXPECT_NE(MessageFor(ex_->I), nullptr);
}

TEST_F(DispatchTest, RootFragmentGoesToY) {
  EXPECT_EQ(dispatch_->messages.front().to, ex_->Y);
}

TEST_F(DispatchTest, FragmentsReferenceUpstreamRequests) {
  const DispatchMessage* y = MessageFor(ex_->Y);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->upstream_fragments.size(), 1u);  // calls X's fragment
  const DispatchMessage* x = MessageFor(ex_->X);
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->upstream_fragments.size(), 2u);  // calls H and I
  EXPECT_NE(x->sub_query.find("[[req_"), std::string::npos);
}

TEST_F(DispatchTest, SqlTextContainsOperations) {
  const DispatchMessage* h = MessageFor(ex_->H);
  ASSERT_NE(h, nullptr);
  EXPECT_NE(h->sub_query.find("Hosp"), std::string::npos);
  EXPECT_NE(h->sub_query.find("stroke"), std::string::npos);
  EXPECT_NE(h->sub_query.find("encrypt(S"), std::string::npos);

  const DispatchMessage* i = MessageFor(ex_->I);
  ASSERT_NE(i, nullptr);
  EXPECT_NE(i->sub_query.find("Ins"), std::string::npos);
  EXPECT_NE(i->sub_query.find("encrypt(C"), std::string::npos);
  EXPECT_NE(i->sub_query.find("encrypt(P"), std::string::npos);

  const DispatchMessage* x = MessageFor(ex_->X);
  ASSERT_NE(x, nullptr);
  EXPECT_NE(x->sub_query.find("GROUP BY"), std::string::npos);
  EXPECT_NE(x->sub_query.find("avg("), std::string::npos);

  const DispatchMessage* y = MessageFor(ex_->Y);
  ASSERT_NE(y, nullptr);
  EXPECT_NE(y->sub_query.find("decrypt(P"), std::string::npos);
  EXPECT_NE(y->sub_query.find("P>100"), std::string::npos);
}

TEST_F(DispatchTest, KeysAttachedPerHolders) {
  // H gets kSC; I gets kSC and kP; Y gets kP; X gets nothing.
  const DispatchMessage* h = MessageFor(ex_->H);
  const DispatchMessage* i = MessageFor(ex_->I);
  const DispatchMessage* x = MessageFor(ex_->X);
  const DispatchMessage* y = MessageFor(ex_->Y);
  EXPECT_EQ(h->key_ids.size(), 1u);
  EXPECT_EQ(i->key_ids.size(), 2u);
  EXPECT_TRUE(x->key_ids.empty());
  EXPECT_EQ(y->key_ids.size(), 1u);
}

TEST_F(DispatchTest, SignaturesVerify) {
  for (const DispatchMessage& m : dispatch_->messages) {
    std::string payload = m.sub_query;
    for (uint64_t k : m.key_ids) payload += "|" + std::to_string(k);
    EXPECT_TRUE(VerifySignature(ex_->U, payload, m.signature));
    // A tampered payload or wrong signer fails.
    EXPECT_FALSE(VerifySignature(ex_->U, payload + "x", m.signature));
    EXPECT_FALSE(VerifySignature(ex_->X, payload, m.signature));
  }
}

TEST_F(DispatchTest, ToStringRendersAllMessages) {
  std::string s = dispatch_->ToString(ex_->subjects);
  EXPECT_NE(s.find("req_0 -> Y"), std::string::npos);
  EXPECT_NE(s.find("sig="), std::string::npos);
}

}  // namespace
}  // namespace mpq

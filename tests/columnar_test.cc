// Unit tests for the columnar storage layer: typed ColumnData vectors,
// null masks, heterogeneous demotion, selection-vector gathers, chunk
// splicing, and the per-column wire format fragments cross the simulated
// network as.

#include <gtest/gtest.h>

#include "crypto/keyring.h"
#include "exec/table.h"

namespace mpq {
namespace {

Cell I(int64_t v) { return Cell(Value(v)); }
Cell D(double v) { return Cell(Value(v)); }
Cell S(std::string v) { return Cell(Value(std::move(v))); }

TEST(ColumnDataTest, TypedAppendStaysTyped) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  c.Append(I(2));
  EXPECT_EQ(c.rep(), ColumnRep::kInt64);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.i64()[0], 1);
  EXPECT_EQ(c.i64()[1], 2);
  EXPECT_FALSE(c.has_nulls());
  EXPECT_EQ(c.GetCell(1).plain().AsInt(), 2);
}

TEST(ColumnDataTest, NullsGoToTheMaskNotTheRep) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(7));
  c.Append(Cell(Value::Null()));
  c.Append(I(9));
  EXPECT_EQ(c.rep(), ColumnRep::kInt64);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetCell(1).plain().is_null());
  EXPECT_EQ(c.GetCell(2).plain().AsInt(), 9);
}

TEST(ColumnDataTest, MixedTypesDemoteToCells) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  c.Append(D(2.5));  // an int column cannot hold a double bit-exactly
  EXPECT_EQ(c.rep(), ColumnRep::kCell);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetCell(0).plain().AsInt(), 1);
  EXPECT_EQ(c.GetCell(1).plain().AsDouble(), 2.5);
}

TEST(ColumnDataTest, EncryptedCellsDemotePlainColumns) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  KeyMaterial km = MakeKeyMaterial(3, 1);
  EncValue ev =
      *EncryptValue(Value(int64_t{5}), EncScheme::kDeterministic, 1, km, 1);
  c.Append(Cell(ev));
  EXPECT_EQ(c.rep(), ColumnRep::kCell);
  EXPECT_TRUE(c.GetCell(1).is_encrypted());
}

TEST(ColumnDataTest, SelectionGatherAcrossReps) {
  ColumnData src(ColumnRep::kString);
  src.Append(S("a"));
  src.Append(S("b"));
  src.Append(Cell(Value::Null()));
  src.Append(S("d"));
  SelectionVector sel = {3, 0, 2};
  ColumnData dst(ColumnRep::kString);
  dst.AppendSelected(src, sel.data(), sel.size());
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.str()[0], "d");
  EXPECT_EQ(dst.str()[1], "a");
  EXPECT_TRUE(dst.IsNull(2));

  // Gather into a mismatched rep falls back to cell appends but keeps the
  // same logical content.
  ColumnData cells(ColumnRep::kCell);
  cells.AppendSelected(src, sel.data(), sel.size());
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells.GetCell(0).plain().AsString(), "d");
  EXPECT_TRUE(cells.GetCell(2).plain().is_null());
}

TEST(ColumnDataTest, MoveAppendSplicesBuffers) {
  ColumnData a(ColumnRep::kInt64);
  a.Append(I(1));
  ColumnData b(ColumnRep::kInt64);
  b.Append(I(2));
  b.Append(Cell(Value::Null()));
  a.MoveAppend(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.i64()[1], 2);
  EXPECT_TRUE(a.IsNull(2));
  EXPECT_EQ(b.size(), 0u);

  // Mismatched reps splice via demotion without losing values.
  ColumnData c(ColumnRep::kDouble);
  c.Append(D(0.5));
  a.MoveAppend(std::move(c));
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.rep(), ColumnRep::kCell);
  EXPECT_EQ(a.GetCell(3).plain().AsDouble(), 0.5);
}

TEST(ColumnDataTest, ColumnFromCellsPicksRepFromContent) {
  EXPECT_EQ(ColumnFromCells({I(1), I(2)}).rep(), ColumnRep::kInt64);
  EXPECT_EQ(ColumnFromCells({Cell(Value::Null()), D(1.0)}).rep(),
            ColumnRep::kDouble);
  EXPECT_EQ(ColumnFromCells({S("x")}).rep(), ColumnRep::kString);
  EXPECT_EQ(ColumnFromCells({I(1), S("x")}).rep(), ColumnRep::kCell);
}

TEST(ColumnDataTest, ByteSizeMatchesPerCellAccounting) {
  ColumnData c(ColumnRep::kString);
  c.Append(S("abc"));
  c.Append(Cell(Value::Null()));
  // string len+4, null 1 — the historical per-Cell numbers.
  EXPECT_EQ(c.ByteSize(), 3u + 4u + 1u);
  ColumnData ints(ColumnRep::kInt64);
  ints.Append(I(1));
  ints.Append(I(2));
  EXPECT_EQ(ints.ByteSize(), 16u);
}

class TableSerdeTest : public ::testing::Test {
 protected:
  static Table Sample() {
    std::vector<ExecColumn> cols(3);
    cols[0].attr = 1;
    cols[0].name = "k";
    cols[0].type = DataType::kInt64;
    cols[1].attr = 2;
    cols[1].name = "s";
    cols[1].type = DataType::kString;
    cols[2].attr = 3;
    cols[2].name = "x";
    cols[2].type = DataType::kDouble;
    Table t(std::move(cols));
    t.AddRow({I(10), S("alpha"), D(1.5)});
    t.AddRow({I(20), Cell(Value::Null()), D(-2.25)});
    t.AddRow({I(30), S("beta"), Cell(Value::Null())});
    return t;
  }
};

TEST_F(TableSerdeTest, RoundTripPlainTable) {
  Table t = Sample();
  std::string wire = t.SerializeColumns();
  Result<Table> back = Table::DeserializeColumns(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->columns()[c].attr, t.columns()[c].attr);
    EXPECT_EQ(back->columns()[c].name, t.columns()[c].name);
    EXPECT_EQ(back->col(c).rep(), t.col(c).rep());
  }
  EXPECT_EQ(back->ToString(10), t.ToString(10));
  EXPECT_EQ(back->ByteSize(), t.ByteSize());
}

TEST_F(TableSerdeTest, RoundTripEncryptedColumn) {
  Table t = Sample();
  KeyMaterial km = MakeKeyMaterial(7, 0);
  std::vector<EncValue> encs;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    encs.push_back(
        *EncryptValue(t.col(0).GetValue(r), EncScheme::kOpe, 0, km, r + 1));
  }
  t.SetColumnData(0, ColumnFromEnc(std::move(encs)));
  t.columns()[0].encrypted = true;
  t.columns()[0].scheme = EncScheme::kOpe;

  Result<Table> back = Table::DeserializeColumns(t.SerializeColumns());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->col(0).rep(), ColumnRep::kEnc);
  EXPECT_TRUE(back->columns()[0].encrypted);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(back->col(0).enc()[r], t.col(0).enc()[r]) << "row " << r;
  }
}

TEST_F(TableSerdeTest, RoundTripHeterogeneousColumn) {
  std::vector<ExecColumn> cols(1);
  cols[0].attr = 9;
  cols[0].name = "m";
  Table t(std::move(cols));
  t.AddRow({I(1)});
  t.AddRow({S("mixed")});
  t.AddRow({Cell(Value::Null())});
  ASSERT_EQ(t.col(0).rep(), ColumnRep::kCell);
  Result<Table> back = Table::DeserializeColumns(t.SerializeColumns());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToString(10), t.ToString(10));
}

TEST_F(TableSerdeTest, ZeroRowAndZeroColumnTables) {
  Table t = Sample();
  Table empty(t.columns());
  Result<Table> back = Table::DeserializeColumns(empty.SerializeColumns());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 3u);

  Table colless;
  colless.AddRow({});
  colless.AddRow({});
  Result<Table> back2 = Table::DeserializeColumns(colless.SerializeColumns());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->num_rows(), 2u);
  EXPECT_EQ(back2->num_columns(), 0u);
}

TEST_F(TableSerdeTest, CorruptBytesRejectedNotCrashed) {
  Table t = Sample();
  std::string wire = t.SerializeColumns();
  EXPECT_FALSE(Table::DeserializeColumns("").ok());
  EXPECT_FALSE(Table::DeserializeColumns("garbage").ok());
  EXPECT_FALSE(Table::DeserializeColumns(wire.substr(0, wire.size() / 2)).ok());
  std::string extra = wire + "x";
  EXPECT_FALSE(Table::DeserializeColumns(extra).ok());
}

}  // namespace
}  // namespace mpq
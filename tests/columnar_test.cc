// Unit tests for the columnar storage layer: typed ColumnData vectors,
// null masks, heterogeneous demotion, selection-vector gathers, chunk
// splicing, and the per-column wire format fragments cross the simulated
// network as.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/keyring.h"
#include "exec/table.h"

namespace mpq {
namespace {

Cell I(int64_t v) { return Cell(Value(v)); }
Cell D(double v) { return Cell(Value(v)); }
Cell S(std::string v) { return Cell(Value(std::move(v))); }

TEST(ColumnDataTest, TypedAppendStaysTyped) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  c.Append(I(2));
  EXPECT_EQ(c.rep(), ColumnRep::kInt64);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.i64()[0], 1);
  EXPECT_EQ(c.i64()[1], 2);
  EXPECT_FALSE(c.has_nulls());
  EXPECT_EQ(c.GetCell(1).plain().AsInt(), 2);
}

TEST(ColumnDataTest, NullsGoToTheMaskNotTheRep) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(7));
  c.Append(Cell(Value::Null()));
  c.Append(I(9));
  EXPECT_EQ(c.rep(), ColumnRep::kInt64);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetCell(1).plain().is_null());
  EXPECT_EQ(c.GetCell(2).plain().AsInt(), 9);
}

TEST(ColumnDataTest, MixedTypesDemoteToCells) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  c.Append(D(2.5));  // an int column cannot hold a double bit-exactly
  EXPECT_EQ(c.rep(), ColumnRep::kCell);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetCell(0).plain().AsInt(), 1);
  EXPECT_EQ(c.GetCell(1).plain().AsDouble(), 2.5);
}

TEST(ColumnDataTest, EncryptedCellsDemotePlainColumns) {
  ColumnData c(ColumnRep::kInt64);
  c.Append(I(1));
  KeyMaterial km = MakeKeyMaterial(3, 1);
  EncValue ev =
      *EncryptValue(Value(int64_t{5}), EncScheme::kDeterministic, 1, km, 1);
  c.Append(Cell(ev));
  EXPECT_EQ(c.rep(), ColumnRep::kCell);
  EXPECT_TRUE(c.GetCell(1).is_encrypted());
}

TEST(ColumnDataTest, SelectionGatherAcrossReps) {
  ColumnData src(ColumnRep::kString);
  src.Append(S("a"));
  src.Append(S("b"));
  src.Append(Cell(Value::Null()));
  src.Append(S("d"));
  SelectionVector sel = {3, 0, 2};
  ColumnData dst(ColumnRep::kString);
  dst.AppendSelected(src, sel.data(), sel.size());
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.str()[0], "d");
  EXPECT_EQ(dst.str()[1], "a");
  EXPECT_TRUE(dst.IsNull(2));

  // Gather into a mismatched rep falls back to cell appends but keeps the
  // same logical content.
  ColumnData cells(ColumnRep::kCell);
  cells.AppendSelected(src, sel.data(), sel.size());
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells.GetCell(0).plain().AsString(), "d");
  EXPECT_TRUE(cells.GetCell(2).plain().is_null());
}

TEST(ColumnDataTest, MoveAppendSplicesBuffers) {
  ColumnData a(ColumnRep::kInt64);
  a.Append(I(1));
  ColumnData b(ColumnRep::kInt64);
  b.Append(I(2));
  b.Append(Cell(Value::Null()));
  a.MoveAppend(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.i64()[1], 2);
  EXPECT_TRUE(a.IsNull(2));
  EXPECT_EQ(b.size(), 0u);

  // Mismatched reps splice via demotion without losing values.
  ColumnData c(ColumnRep::kDouble);
  c.Append(D(0.5));
  a.MoveAppend(std::move(c));
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.rep(), ColumnRep::kCell);
  EXPECT_EQ(a.GetCell(3).plain().AsDouble(), 0.5);
}

TEST(ColumnDataTest, ColumnFromCellsPicksRepFromContent) {
  EXPECT_EQ(ColumnFromCells({I(1), I(2)}).rep(), ColumnRep::kInt64);
  EXPECT_EQ(ColumnFromCells({Cell(Value::Null()), D(1.0)}).rep(),
            ColumnRep::kDouble);
  EXPECT_EQ(ColumnFromCells({S("x")}).rep(), ColumnRep::kString);
  EXPECT_EQ(ColumnFromCells({I(1), S("x")}).rep(), ColumnRep::kCell);
}

TEST(ColumnDataTest, ByteSizeMatchesPerCellAccounting) {
  ColumnData c(ColumnRep::kString);
  c.Append(S("abc"));
  c.Append(Cell(Value::Null()));
  // string len+4, null 1 — the historical per-Cell numbers.
  EXPECT_EQ(c.ByteSize(), 3u + 4u + 1u);
  ColumnData ints(ColumnRep::kInt64);
  ints.Append(I(1));
  ints.Append(I(2));
  EXPECT_EQ(ints.ByteSize(), 16u);
}

class TableSerdeTest : public ::testing::Test {
 protected:
  static Table Sample() {
    std::vector<ExecColumn> cols(3);
    cols[0].attr = 1;
    cols[0].name = "k";
    cols[0].type = DataType::kInt64;
    cols[1].attr = 2;
    cols[1].name = "s";
    cols[1].type = DataType::kString;
    cols[2].attr = 3;
    cols[2].name = "x";
    cols[2].type = DataType::kDouble;
    Table t(std::move(cols));
    t.AddRow({I(10), S("alpha"), D(1.5)});
    t.AddRow({I(20), Cell(Value::Null()), D(-2.25)});
    t.AddRow({I(30), S("beta"), Cell(Value::Null())});
    return t;
  }
};

TEST_F(TableSerdeTest, RoundTripPlainTable) {
  Table t = Sample();
  std::string wire = t.SerializeColumns();
  Result<Table> back = Table::DeserializeColumns(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->columns()[c].attr, t.columns()[c].attr);
    EXPECT_EQ(back->columns()[c].name, t.columns()[c].name);
    EXPECT_EQ(back->col(c).rep(), t.col(c).rep());
  }
  EXPECT_EQ(back->ToString(10), t.ToString(10));
  EXPECT_EQ(back->ByteSize(), t.ByteSize());
}

TEST_F(TableSerdeTest, RoundTripEncryptedColumn) {
  Table t = Sample();
  KeyMaterial km = MakeKeyMaterial(7, 0);
  std::vector<EncValue> encs;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    encs.push_back(
        *EncryptValue(t.col(0).GetValue(r), EncScheme::kOpe, 0, km, r + 1));
  }
  t.SetColumnData(0, ColumnFromEnc(std::move(encs)));
  t.columns()[0].encrypted = true;
  t.columns()[0].scheme = EncScheme::kOpe;

  Result<Table> back = Table::DeserializeColumns(t.SerializeColumns());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->col(0).rep(), ColumnRep::kEnc);
  EXPECT_TRUE(back->columns()[0].encrypted);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(back->col(0).enc()[r], t.col(0).enc()[r]) << "row " << r;
  }
}

TEST_F(TableSerdeTest, RoundTripHeterogeneousColumn) {
  std::vector<ExecColumn> cols(1);
  cols[0].attr = 9;
  cols[0].name = "m";
  Table t(std::move(cols));
  t.AddRow({I(1)});
  t.AddRow({S("mixed")});
  t.AddRow({Cell(Value::Null())});
  ASSERT_EQ(t.col(0).rep(), ColumnRep::kCell);
  Result<Table> back = Table::DeserializeColumns(t.SerializeColumns());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToString(10), t.ToString(10));
}

TEST_F(TableSerdeTest, ZeroRowAndZeroColumnTables) {
  Table t = Sample();
  Table empty(t.columns());
  Result<Table> back = Table::DeserializeColumns(empty.SerializeColumns());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 3u);

  Table colless;
  colless.AddRow({});
  colless.AddRow({});
  Result<Table> back2 = Table::DeserializeColumns(colless.SerializeColumns());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->num_rows(), 2u);
  EXPECT_EQ(back2->num_columns(), 0u);
}

TEST_F(TableSerdeTest, CorruptBytesRejectedNotCrashed) {
  Table t = Sample();
  std::string wire = t.SerializeColumns();
  EXPECT_FALSE(Table::DeserializeColumns("").ok());
  EXPECT_FALSE(Table::DeserializeColumns("garbage").ok());
  EXPECT_FALSE(Table::DeserializeColumns(wire.substr(0, wire.size() / 2)).ok());
  std::string extra = wire + "x";
  EXPECT_FALSE(Table::DeserializeColumns(extra).ok());
}

// ------------------------------------------------------ dictionary coding ---

namespace dict_test {

/// A one-string-column table with heavily repeated values (and a NULL), the
/// shape the wire dictionary encoding exists for.
Table RepetitiveStrings(size_t rows) {
  std::vector<ExecColumn> cols(1);
  cols[0].attr = 1;
  cols[0].name = "s";
  cols[0].type = DataType::kString;
  Table t(std::move(cols));
  for (size_t r = 0; r < rows; ++r) {
    if (r % 17 == 11) {
      t.AddRow({Cell(Value::Null())});
    } else {
      t.AddRow({S("shipmode-" + std::to_string(r % 4))});
    }
  }
  return t;
}

}  // namespace dict_test

TEST(ColumnDictTest, EncodeAssignsFirstOccurrenceCodesAndProbeMisses) {
  ColumnData c(ColumnRep::kString);
  c.Append(S("b"));
  c.Append(S("a"));
  c.Append(Cell(Value::Null()));
  c.Append(S("b"));
  ColumnDict dict(&c);
  std::vector<uint32_t> codes(c.size());
  ASSERT_TRUE(dict.EncodeRange(0, c.size(), codes.data()).ok());
  EXPECT_EQ(codes[0], 0u);  // "b" interned first
  EXPECT_EQ(codes[1], 1u);  // then "a"
  EXPECT_EQ(codes[2], 0u);  // null rows get padding code 0
  EXPECT_EQ(codes[3], 0u);  // repeated "b" reuses its code
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(c.str()[dict.RepRow(1)], "a");

  ColumnData probe(ColumnRep::kString);
  probe.Append(S("a"));
  probe.Append(S("unseen"));
  std::vector<uint32_t> pcodes(probe.size());
  ASSERT_TRUE(dict.ProbeRange(probe, 0, probe.size(), pcodes.data()).ok());
  EXPECT_EQ(pcodes[0], 1u);
  EXPECT_EQ(pcodes[1], ColumnDict::kMiss);
}

TEST(ColumnDictTest, RndCiphertextsRejectedAsKeys) {
  KeyMaterial km = MakeKeyMaterial(3, 1);
  ColumnData c(ColumnRep::kEnc);
  c.Append(Cell(*EncryptValue(Value(int64_t{5}), EncScheme::kRandom, 1, km,
                              /*fresh_nonce=*/9)));
  ColumnDict dict(&c);
  std::vector<uint32_t> codes(1);
  Status s = dict.EncodeRange(0, 1, codes.data());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

TEST_F(TableSerdeTest, DictEncodedStringsRoundTripAndShrinkTheWire) {
  Table t = dict_test::RepetitiveStrings(500);
  std::string wire = t.SerializeColumns();
  // 4 distinct ~11-byte values over 500 rows: the dictionary form (values
  // once + 4-byte codes) must beat the plain form (values repeated).
  uint64_t plain_payload = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    plain_payload += 4 + (t.col(0).IsNull(r) ? 0 : t.col(0).str()[r].size());
  }
  EXPECT_LT(wire.size(), plain_payload);

  Result<Table> back = Table::DeserializeColumns(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  EXPECT_EQ(back->col(0).rep(), ColumnRep::kString);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(back->col(0).IsNull(r), t.col(0).IsNull(r)) << "row " << r;
    if (!t.col(0).IsNull(r)) {
      ASSERT_EQ(back->col(0).str()[r], t.col(0).str()[r]) << "row " << r;
    }
  }
  EXPECT_EQ(back->ByteSize(), t.ByteSize());
}

TEST_F(TableSerdeTest, UniqueStringsStayPlainOnTheWire) {
  // All-distinct values: a dictionary would only add overhead, so the
  // deterministic cost rule must keep the plain encoding.
  std::vector<ExecColumn> cols(1);
  cols[0].attr = 1;
  cols[0].name = "s";
  cols[0].type = DataType::kString;
  Table t(std::move(cols));
  for (int r = 0; r < 50; ++r) t.AddRow({S("unique-" + std::to_string(r))});
  Result<Table> back = Table::DeserializeColumns(t.SerializeColumns());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToString(60), t.ToString(60));
}

TEST_F(TableSerdeTest, DictCorruptionRejectedNotCrashed) {
  Table t = dict_test::RepetitiveStrings(64);
  std::string wire = t.SerializeColumns();
  ASSERT_TRUE(Table::DeserializeColumns(wire).ok());

  // The row codes are the last 4·rows bytes of the single-column frame;
  // smash the final code to an out-of-range value.
  std::string bad = wire;
  bad[bad.size() - 1] = '\xff';
  bad[bad.size() - 2] = '\xff';
  Result<Table> r = Table::DeserializeColumns(bad);
  EXPECT_FALSE(r.ok());

  // Truncations through the dictionary region must fail cleanly too.
  for (size_t cut : {wire.size() - 3, wire.size() / 2, wire.size() / 4}) {
    EXPECT_FALSE(Table::DeserializeColumns(wire.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

// ------------------------------------------------------------ serde fuzz ---

namespace fuzz {

/// A frame exercising every encoding the deserializer knows: typed int64 /
/// double / string columns with nulls, a dictionary-eligible repetitive
/// string column, a ciphertext column, and a heterogeneous cell column.
Table EveryRepTable() {
  std::vector<ExecColumn> cols(6);
  cols[0].attr = 1;
  cols[0].name = "k";
  cols[0].type = DataType::kInt64;
  cols[1].attr = 2;
  cols[1].name = "x";
  cols[1].type = DataType::kDouble;
  cols[2].attr = 3;
  cols[2].name = "s";
  cols[2].type = DataType::kString;
  cols[3].attr = 4;
  cols[3].name = "mode";
  cols[3].type = DataType::kString;
  cols[4].attr = 5;
  cols[4].name = "enc";
  cols[4].type = DataType::kInt64;
  cols[4].encrypted = true;
  cols[4].scheme = EncScheme::kDeterministic;
  cols[5].attr = 6;
  cols[5].name = "mix";
  Table t(std::move(cols));
  KeyMaterial km = MakeKeyMaterial(11, 2);
  for (int64_t r = 0; r < 64; ++r) {
    Cell enc(*EncryptValue(Value(r % 5), EncScheme::kDeterministic, 2, km, 0));
    Cell mix = r % 3 == 0   ? I(r)
               : r % 3 == 1 ? S("m" + std::to_string(r))
                            : Cell(Value::Null());
    t.AddRow({r % 7 == 3 ? Cell(Value::Null()) : I(r * 1001),
              r % 5 == 4 ? Cell(Value::Null()) : D(r * 0.125),
              S("uniq-" + std::to_string(r)),
              r % 11 == 6 ? Cell(Value::Null())
                          : S("mode-" + std::to_string(r % 3)),
              enc, mix});
  }
  return t;
}

}  // namespace fuzz

// Deterministic mutation fuzz over the column wire format: >= 10k frames
// derived from a valid one by truncation, bit flips, byte smashes, and
// garbage extension. Every mutant must come back as ok-or-Status — never a
// crash, sanitizer report, or hang — and accepted mutants must themselves
// re-serialize and round-trip (the decoder only ever yields well-formed
// tables).
TEST(TableSerdeFuzzTest, MutatedFramesNeverCrashTheDeserializer) {
  const std::string wire = fuzz::EveryRepTable().SerializeColumns();
  ASSERT_TRUE(Table::DeserializeColumns(wire).ok());
  uint64_t rng = 0x5eedf00dcafe1234ull;
  auto next = [&rng] { return rng = SplitMix64(rng); };
  size_t accepted = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::string mut = wire;
    switch (next() % 4) {
      case 0:  // truncate
        mut.resize(next() % (wire.size() + 1));
        break;
      case 1: {  // flip 1-8 bits
        size_t flips = 1 + next() % 8;
        for (size_t f = 0; f < flips && !mut.empty(); ++f) {
          mut[next() % mut.size()] ^= static_cast<char>(1u << (next() % 8));
        }
        break;
      }
      case 2: {  // smash 1-9 whole bytes (length prefixes, enum tags)
        size_t smashes = 1 + next() % 9;
        for (size_t s = 0; s < smashes && !mut.empty(); ++s) {
          mut[next() % mut.size()] = static_cast<char>(next() % 256);
        }
        break;
      }
      default: {  // truncate then extend with garbage
        mut.resize(next() % (wire.size() + 1));
        size_t extra = next() % 32;
        for (size_t e = 0; e < extra; ++e) {
          mut.push_back(static_cast<char>(next() % 256));
        }
        break;
      }
    }
    Result<Table> r = Table::DeserializeColumns(mut);
    if (!r.ok()) continue;
    ++accepted;
    // An accepted frame must decode to a self-consistent table.
    Result<Table> again = Table::DeserializeColumns(r->SerializeColumns());
    ASSERT_TRUE(again.ok()) << "accepted mutant failed to round-trip";
    ASSERT_EQ(again->num_rows(), r->num_rows());
    ASSERT_EQ(again->num_columns(), r->num_columns());
  }
  // Bit flips in string payload bytes (among others) legitimately survive;
  // what matters is that nothing crashed and survivors round-tripped.
  SUCCEED() << accepted << " mutants accepted";
}

}  // namespace
}  // namespace mpq
// Tests for morsel-driven scheduling (exec/morsel.h): the global run
// registry's exactly-once / deterministic-partition / lowest-error
// contracts, and SharedScanManager's inter-query scan coalescing.

#include "exec/morsel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace mpq {
namespace {

TEST(MorselSchedulerTest, CoversEveryIndexExactlyOnce) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    MorselScheduler sched(&pool);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    Status st = sched.Run(kN, 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
    EXPECT_EQ(sched.morsels_executed(), (kN + 63) / 64);
    EXPECT_EQ(sched.runs_started(), 1u);
    EXPECT_EQ(sched.morsels_pending(), 0u);
  }
}

TEST(MorselSchedulerTest, MorselBoundariesIndependentOfThreads) {
  // The morsel partition must depend only on (n, grain) — the property that
  // makes batch-order merges bit-identical at 1, 2, or 8 threads.
  std::vector<std::vector<std::pair<size_t, size_t>>> partitions;
  for (size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    MorselScheduler sched(&pool);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> morsels;
    Status st = sched.Run(1000, 128, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      morsels.emplace_back(begin, end);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    std::sort(morsels.begin(), morsels.end());
    partitions.push_back(std::move(morsels));
  }
  EXPECT_EQ(partitions[0], partitions[1]);
  EXPECT_EQ(partitions[1], partitions[2]);
}

TEST(MorselSchedulerTest, ReportsLowestMorselError) {
  ThreadPool pool(4);
  MorselScheduler sched(&pool);
  Status st = sched.Run(1000, 10, [&](size_t begin, size_t) {
    if (begin >= 500) {
      return Status::Internal("morsel " + std::to_string(begin));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "morsel 500");
}

TEST(MorselSchedulerTest, ConcurrentRunsShareOneQueue) {
  // N caller threads each register a run; workers pump the shared FIFO.
  // Every run must cover its own range exactly once with no cross-talk.
  ThreadPool pool(2);
  MorselScheduler sched(&pool);
  constexpr size_t kRuns = 8;
  constexpr size_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kRuns);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> callers;
  std::vector<Status> results(kRuns);
  for (size_t r = 0; r < kRuns; ++r) {
    callers.emplace_back([&, r] {
      results[r] = sched.Run(kN, 64, [&, r](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[r][i].fetch_add(1);
        return Status::OK();
      });
    });
  }
  for (auto& t : callers) t.join();
  for (size_t r = 0; r < kRuns; ++r) {
    ASSERT_TRUE(results[r].ok()) << "run " << r;
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[r][i].load(), 1) << "run " << r << " index " << i;
    }
  }
  EXPECT_EQ(sched.runs_started(), kRuns);
  EXPECT_EQ(sched.morsels_executed(), kRuns * (kN / 64));
  EXPECT_EQ(sched.morsels_pending(), 0u);
  EXPECT_GE(sched.queue_depth_peak(), kN / 64);
}

// Collects per-batch coverage for one Scan participant: slot b records how
// many times fn ran for batch b (each slot is written by whichever thread
// claimed the batch — exactly-once makes the writes disjoint).
std::function<Status(size_t, size_t, size_t)> Coverage(
    std::vector<std::atomic<int>>* slots, size_t grain, size_t n) {
  return [slots, grain, n](size_t batch, size_t begin, size_t end) {
    EXPECT_EQ(begin, batch * grain);
    EXPECT_EQ(end, std::min(begin + grain, n));
    (*slots)[batch].fetch_add(1);
    return Status::OK();
  };
}

TEST(SharedScanTest, LeadAndAttachCoalesce) {
  // Deterministic coalescing: hold the leader before its first claim, attach
  // a second scan, release — the attacher must join the in-flight scan (one
  // lead, one attach) and every batch must run exactly once per participant.
  SharedScanManager mgr;
  int payload = 0;
  constexpr size_t kN = 1000;
  constexpr size_t kGrain = 100;
  constexpr size_t kBatches = 10;
  std::vector<std::atomic<int>> a(kBatches), b(kBatches);

  mgr.HoldNewScansForTesting();
  std::thread leader([&] {
    Status st = mgr.Scan(&payload, kN, kGrain, Coverage(&a, kGrain, kN));
    EXPECT_TRUE(st.ok());
  });
  while (mgr.leads() < 1) std::this_thread::yield();
  std::thread attacher([&] {
    Status st = mgr.Scan(&payload, kN, kGrain, Coverage(&b, kGrain, kN));
    EXPECT_TRUE(st.ok());
  });
  while (mgr.attaches() < 1) std::this_thread::yield();
  mgr.ReleaseHeldScansForTesting();
  leader.join();
  attacher.join();

  EXPECT_EQ(mgr.leads(), 1u);
  EXPECT_EQ(mgr.attaches(), 1u);
  // The attacher joined at batch 0 (leader was parked), so every batch
  // served both participants from one claim.
  EXPECT_EQ(mgr.shared_batches(), kBatches);
  for (size_t i = 0; i < kBatches; ++i) {
    EXPECT_EQ(a[i].load(), 1) << "leader batch " << i;
    EXPECT_EQ(b[i].load(), 1) << "attacher batch " << i;
  }
}

TEST(SharedScanTest, SequentialScansDoNotCoalesce) {
  // A finished scan must retire from the active map: a later identical scan
  // leads its own claim loop instead of attaching to exhausted state.
  SharedScanManager mgr;
  int payload = 0;
  std::vector<std::atomic<int>> a(4), b(4);
  ASSERT_TRUE(mgr.Scan(&payload, 400, 100, Coverage(&a, 100, 400)).ok());
  ASSERT_TRUE(mgr.Scan(&payload, 400, 100, Coverage(&b, 100, 400)).ok());
  EXPECT_EQ(mgr.leads(), 2u);
  EXPECT_EQ(mgr.attaches(), 0u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i].load(), 1);
    EXPECT_EQ(b[i].load(), 1);
  }
}

TEST(SharedScanTest, DifferentKeysDoNotCoalesce) {
  // Coalescing requires the same (payload, n, grain): a different payload or
  // partition leads separately even while a scan is held in flight.
  SharedScanManager mgr;
  int payload1 = 0;
  int payload2 = 0;
  std::vector<std::atomic<int>> a(4), b(4), c(8);
  mgr.HoldNewScansForTesting();
  std::thread t1([&] {
    EXPECT_TRUE(mgr.Scan(&payload1, 400, 100, Coverage(&a, 100, 400)).ok());
  });
  while (mgr.leads() < 1) std::this_thread::yield();
  std::thread t2([&] {
    EXPECT_TRUE(mgr.Scan(&payload2, 400, 100, Coverage(&b, 100, 400)).ok());
  });
  std::thread t3([&] {
    EXPECT_TRUE(mgr.Scan(&payload1, 400, 50, Coverage(&c, 50, 400)).ok());
  });
  while (mgr.leads() < 3) std::this_thread::yield();
  mgr.ReleaseHeldScansForTesting();
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(mgr.leads(), 3u);
  EXPECT_EQ(mgr.attaches(), 0u);
}

TEST(SharedScanTest, ErrorsStayPerParticipant) {
  // One participant's callback failing must surface only through that
  // participant's Scan; the co-scanner still completes cleanly.
  SharedScanManager mgr;
  int payload = 0;
  std::vector<std::atomic<int>> good(10);
  Status bad_st;
  mgr.HoldNewScansForTesting();
  std::thread bad([&] {
    bad_st = mgr.Scan(&payload, 1000, 100, [](size_t batch, size_t, size_t) {
      if (batch >= 5) {
        return Status::Internal("batch " + std::to_string(batch));
      }
      return Status::OK();
    });
  });
  while (mgr.leads() < 1) std::this_thread::yield();
  std::thread ok([&] {
    EXPECT_TRUE(mgr.Scan(&payload, 1000, 100, Coverage(&good, 100, 1000)).ok());
  });
  while (mgr.attaches() < 1) std::this_thread::yield();
  mgr.ReleaseHeldScansForTesting();
  bad.join();
  ok.join();
  ASSERT_FALSE(bad_st.ok());
  // Lowest failing batch wins, deterministically, whichever thread ran it.
  EXPECT_EQ(bad_st.message(), "batch 5");
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(good[i].load(), 1);
}

TEST(SharedScanTest, ManyConcurrentScansExactCoverage) {
  // Hammer: N threads scan the same payload concurrently with no holds.
  // However lead/attach interleaves, per-participant coverage must stay
  // exactly-once and the lead/attach split must account for every scan.
  SharedScanManager mgr;
  int payload = 0;
  constexpr size_t kThreads = 8;
  constexpr size_t kBatches = 32;
  std::vector<std::vector<std::atomic<int>>> hits(kThreads);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kBatches);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EXPECT_TRUE(mgr.Scan(&payload, kBatches * 10, 10,
                           Coverage(&hits[t], 10, kBatches * 10))
                      .ok());
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t b = 0; b < kBatches; ++b) {
      ASSERT_EQ(hits[t][b].load(), 1) << "thread " << t << " batch " << b;
    }
  }
  EXPECT_EQ(mgr.leads() + mgr.attaches(), kThreads);
  EXPECT_GE(mgr.leads(), 1u);
}

}  // namespace
}  // namespace mpq

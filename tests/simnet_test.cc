// Tests for the simulated network and the failover machinery: link timing,
// seeded fault determinism, channel mailboxes, and the fault matrix — a
// seeded provider crash at every dispatch step of the paper example's
// optimizer-chosen plan, at 1/2/8 threads, always recovering to a result
// identical to the fault-free run via an authorized alternative assignment,
// with no stale-policy execution after failover.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/failover.h"
#include "net/channel.h"
#include "net/simnet.h"
#include "paper_example.h"
#include "service/query_service.h"
#include "testing/reference_exec.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

// ---------------------------------------------------------------- SimNet ---

TEST(SimNetTest, LinkTimingAccountsLatencyAndBandwidth) {
  SimNet net;
  net.SetDefaultLink(LinkParams{0.010, 8000.0});  // 10 ms, 1 KB/s
  auto d = net.Deliver(0, 1, /*bytes=*/1000, /*step=*/0, NetPolicy{});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->attempts, 1);
  EXPECT_NEAR(d->virtual_s, 0.010 + 1.0, 1e-9);  // 1000 B at 1 KB/s = 1 s
  EXPECT_EQ(net.GetStats().messages, 1u);
  EXPECT_EQ(net.GetStats().bytes_delivered, 1000u);
}

TEST(SimNetTest, DropDecisionsAreSeededDeterministic) {
  FaultPlan faults;
  faults.seed = 99;
  faults.drop_prob = 0.5;
  NetPolicy policy;
  policy.max_attempts = 10;

  auto run = [&] {
    SimNet net;
    net.SetFaultPlan(faults);
    std::vector<int> attempts;
    for (int step = 0; step < 64; ++step) {
      auto d = net.Deliver(0, 1, 100, step, policy);
      attempts.push_back(d.ok() ? d->attempts : -1);
    }
    return attempts;
  };
  // Identical fault plans make identical decisions, delivery after delivery.
  EXPECT_EQ(run(), run());

  // A different seed makes different decisions somewhere in 64 edges.
  auto first = run();
  faults.seed = 100;
  EXPECT_NE(first, run());
}

TEST(SimNetTest, CrashAtStepFiresExactlyThere) {
  SubjectRegistry subjects;
  SubjectId p = *subjects.Register("P", SubjectKind::kProvider);
  SimNet net(&subjects);
  FaultPlan faults;
  faults.crash_at_step[p] = 7;
  net.SetFaultPlan(faults);

  EXPECT_TRUE(net.BeginStep(p, 3).ok());
  EXPECT_TRUE(net.Alive(p));
  Status at7 = net.BeginStep(p, 7);
  EXPECT_EQ(at7.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(net.Alive(p));
  // Once down, every step and every delivery touching p fails.
  EXPECT_FALSE(net.BeginStep(p, 3).ok());
  EXPECT_EQ(net.Deliver(p, 1, 10, 8, NetPolicy{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net.Deliver(1, p, 10, 8, NetPolicy{}).status().code(),
            StatusCode::kUnavailable);
  ASSERT_EQ(net.DownSubjects().size(), 1u);
  EXPECT_EQ(net.DownSubjects()[0], p);
}

TEST(SimNetTest, RetryExhaustionSuspectsTheProviderPeer) {
  SubjectRegistry subjects;
  SubjectId a = *subjects.Register("A", SubjectKind::kAuthority);
  SubjectId p = *subjects.Register("P", SubjectKind::kProvider);
  SimNet net(&subjects);
  FaultPlan faults;
  faults.drop_prob = 1.0;  // every attempt dropped
  net.SetFaultPlan(faults);
  NetPolicy policy;
  policy.max_attempts = 3;

  auto d = net.Deliver(a, p, 500, /*step=*/4, policy);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnavailable);
  // The excludable peer (the provider) is suspected dead; the authority
  // stays up. All three attempts' bytes were wasted.
  EXPECT_FALSE(net.Alive(p));
  EXPECT_TRUE(net.Alive(a));
  SimNetStats stats = net.GetStats();
  EXPECT_EQ(stats.drops, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.wasted_bytes, 1500u);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(SimNetTest, FragmentDeadlineBudgetIsEnforced) {
  SubjectRegistry subjects;
  SubjectId u = *subjects.Register("U", SubjectKind::kUser);
  SubjectId p = *subjects.Register("P", SubjectKind::kProvider);
  SimNet net(&subjects);
  net.SetDefaultLink(LinkParams{0.5, 0});  // half a second of latency
  NetPolicy policy;
  policy.max_attempts = 1;
  policy.fragment_deadline_s = 0.1;

  auto d = net.Deliver(p, u, 10, /*step=*/0, policy);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(net.Alive(p));  // the provider peer takes the blame

  // A generous budget passes.
  SimNet net2(&subjects);
  net2.SetDefaultLink(LinkParams{0.5, 0});
  policy.fragment_deadline_s = 2.0;
  EXPECT_TRUE(net2.Deliver(p, u, 10, 0, policy).ok());
}

TEST(ChannelTest, SlotsDeliverInOperandOrder) {
  Channel ch(2);
  Table t1;
  t1.AddRow({});
  Envelope e1;
  e1.slot = 1;
  e1.from_node = 5;
  e1.payload = std::move(t1);
  ch.Send(std::move(e1));
  EXPECT_EQ(ch.pending(), 1u);
  EXPECT_FALSE(ch.TryRecv(0).has_value());

  Envelope e0;
  e0.slot = 0;
  e0.from_node = 3;
  ch.Send(std::move(e0));
  auto got0 = ch.TryRecv(0);
  auto got1 = ch.TryRecv(1);
  ASSERT_TRUE(got0.has_value());
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got0->from_node, 3);
  EXPECT_EQ(got1->from_node, 5);
  EXPECT_EQ(got1->payload.num_rows(), 1u);
  EXPECT_EQ(ch.pending(), 0u);
}

// ---------------------------------------------------------- fault matrix ---

/// Fixture: the paper example behind a FailoverExecutor on a configurable
/// SimNet.
class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    hosp_data_ = ex_->HospData();
    ins_data_ = ex_->InsData();
  }

  /// Runs the full optimize→execute pipeline against `net` with `pool`.
  Result<FailoverOutcome> RunPipeline(SimNet* net, ThreadPool* pool) {
    FailoverConfig cfg;
    cfg.pool = pool;
    FailoverExecutor exec(&ex_->catalog, &ex_->subjects, ex_->policy.get(),
                          &prices_, &topo_, net, cfg);
    exec.LoadTable(ex_->hosp, &hosp_data_);
    exec.LoadTable(ex_->ins, &ins_data_);
    return exec.Execute(plan_.get(), ex_->U);
  }

  bool IsProvider(SubjectId s) const {
    return ex_->subjects.Get(s).kind == SubjectKind::kProvider;
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
  PricingTable prices_;
  Topology topo_;
  Table hosp_data_;
  Table ins_data_;
};

TEST_F(FaultMatrixTest, CrashAtEveryProviderStepRecoversIdentically) {
  // Fault-free baseline (also yields the steps each provider executes).
  SimNet clean(&ex_->subjects);
  auto baseline = RunPipeline(&clean, nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->failovers, 0u);
  std::vector<std::string> want = CanonicalRows(baseline->result.result);

  // The plaintext oracle agrees with the fault-free distributed run.
  ReferenceExecutor oracle(&ex_->catalog);
  oracle.LoadTable(ex_->hosp, &hosp_data_);
  oracle.LoadTable(ex_->ins, &ins_data_);
  auto oracle_result = oracle.Run(plan_.get());
  ASSERT_TRUE(oracle_result.ok()) << oracle_result.status().ToString();
  EXPECT_EQ(CanonicalRows(*oracle_result), want);

  // Every dispatch step of the extended plan that lands on a provider, ×
  // {1, 2, 8} threads: crash the assignee exactly there; the runtime must
  // re-plan around it and produce the identical table.
  std::vector<std::pair<int, SubjectId>> provider_steps;
  for (const auto& [node_id, subject] :
       baseline->assignment.extended.assignment) {
    if (IsProvider(subject)) provider_steps.emplace_back(node_id, subject);
  }
  ASSERT_FALSE(provider_steps.empty())
      << "optimizer routed nothing to providers; matrix is vacuous";

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads == 1 ? 0 : threads);
    for (const auto& [step, subject] : provider_steps) {
      SimNet net(&ex_->subjects);
      FaultPlan faults;
      faults.crash_at_step[subject] = step;
      net.SetFaultPlan(faults);

      auto recovered = RunPipeline(&net, &pool);
      ASSERT_TRUE(recovered.ok())
          << "threads=" << threads << " crash@" << step << " of "
          << ex_->subjects.Name(subject) << ": "
          << recovered.status().ToString();
      EXPECT_GE(recovered->failovers, 1u);
      // The dead provider is excluded from the recovery assignment.
      for (const auto& [n, s] : recovered->assignment.extended.assignment) {
        EXPECT_NE(s, subject) << "node " << n << " still at the dead subject";
      }
      EXPECT_EQ(CanonicalRows(recovered->result.result), want)
          << "threads=" << threads << " crash@" << step;
    }
  }
}

TEST_F(FaultMatrixTest, RootStepCrashAccountsRetransferBytes) {
  // Crash the root's assignee at the root step: by then every operand edge
  // has delivered, so the abandoned attempt's bytes show up as retransfer.
  SimNet clean(&ex_->subjects);
  auto baseline = RunPipeline(&clean, nullptr);
  ASSERT_TRUE(baseline.ok());
  SubjectId root_subject =
      baseline->assignment.extended.assignment.at(plan_->id);
  if (!IsProvider(root_subject)) {
    GTEST_SKIP() << "root not at a provider under this pricing";
  }

  SimNet net(&ex_->subjects);
  FaultPlan faults;
  faults.crash_at_step[root_subject] = plan_->id;
  net.SetFaultPlan(faults);
  auto recovered = RunPipeline(&net, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE(recovered->failovers, 1u);
  EXPECT_GT(recovered->retransfer_bytes, 0u);
  EXPECT_EQ(CanonicalRows(recovered->result.result),
            CanonicalRows(baseline->result.result));
}

TEST_F(FaultMatrixTest, AuthorityCrashIsTerminal) {
  // A data authority cannot be routed around: its leaves cannot move.
  SimNet net(&ex_->subjects);
  net.Crash(ex_->H);
  auto r = RunPipeline(&net, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultMatrixTest, FailoverReplansUnderCurrentPolicyNotTheStaleOne) {
  // The plan is optimized while provider Y is still authorized; Y's grants
  // are then revoked *and* the plan's primary provider crashes. Recovery
  // must re-enter candidates under the current policy: the dead provider is
  // excluded by the network, the revoked one by authorization — neither may
  // execute anything.
  SimNet clean(&ex_->subjects);
  auto baseline = RunPipeline(&clean, nullptr);
  ASSERT_TRUE(baseline.ok());
  std::vector<std::pair<int, SubjectId>> provider_steps;
  for (const auto& [node_id, subject] :
       baseline->assignment.extended.assignment) {
    if (IsProvider(subject)) provider_steps.emplace_back(node_id, subject);
  }
  ASSERT_FALSE(provider_steps.empty());
  auto [crash_step, crash_subject] = provider_steps.front();

  // Revoke every other provider's grants (epoch advances), then crash.
  for (SubjectId p : {ex_->X, ex_->Y, ex_->Z}) {
    if (p == crash_subject) continue;
    ASSERT_TRUE(ex_->policy->Revoke(ex_->hosp, p).ok());
    ASSERT_TRUE(ex_->policy->Revoke(ex_->ins, p).ok());
  }
  SimNet net(&ex_->subjects);
  FaultPlan faults;
  faults.crash_at_step[crash_subject] = crash_step;
  net.SetFaultPlan(faults);

  auto recovered = RunPipeline(&net, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE(recovered->failovers, 1u);
  for (const auto& [n, s] : recovered->assignment.extended.assignment) {
    EXPECT_FALSE(IsProvider(s))
        << "node " << n << " executed at a dead or revoked provider";
  }
  // Identical answer, via an assignment verified against the current policy
  // (FailoverExecutor re-verifies internally; check once more here).
  EXPECT_TRUE(VerifyAuthorizedAssignment(recovered->assignment.extended,
                                         *ex_->policy)
                  .ok());
  EXPECT_EQ(CanonicalRows(recovered->result.result),
            CanonicalRows(baseline->result.result));
}

// -------------------------------------------------- serving-layer failover --

TEST(ServiceFailoverTest, CachedPlanFailsOverMidRunAndRetiresStaleEntry) {
  auto ex = MakePaperExample();
  PricingTable prices = PricingTable::PaperDefaults(ex->subjects);
  Topology topo = Topology::PaperDefaults(ex->subjects);
  Table hosp = ex->HospData();
  Table ins = ex->InsData();
  PlanPtr plan = ex->BuildQueryPlan();

  // Probe which provider steps the optimizer picks (the service runs the
  // same minimum-cost pipeline over the same inputs).
  SimNet probe_net(&ex->subjects);
  FailoverExecutor probe(&ex->catalog, &ex->subjects, ex->policy.get(),
                         &prices, &topo, &probe_net, FailoverConfig{});
  probe.LoadTable(ex->hosp, &hosp);
  probe.LoadTable(ex->ins, &ins);
  auto probed = probe.Execute(plan.get(), ex->U);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  int crash_step = -1;
  SubjectId victim = kInvalidSubject;
  for (const auto& [node_id, subject] :
       probed->assignment.extended.assignment) {
    if (ex->subjects.Get(subject).kind == SubjectKind::kProvider) {
      crash_step = node_id;
      victim = subject;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidSubject) << "optimizer used no provider";

  SimNet net(&ex->subjects);
  ServiceConfig config;
  config.net = &net;
  QueryService service(&ex->catalog, &ex->subjects, ex->policy.get(), &prices,
                       &topo, config);
  service.LoadTable(ex->hosp, &hosp);
  service.LoadTable(ex->ins, &ins);
  auto session = service.OpenSession(ex->U);
  ASSERT_TRUE(session.ok());
  const std::string sql =
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100";

  auto cold = service.ExecuteSql(sql, *session);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->stats.failovers, 0u);

  // Arm the crash only now: the cached plan's provider dies mid-run of the
  // next (cache-hit) request, which recovers through an authorized
  // alternative in-request. Same bits, ≥1 failover, current policy epoch.
  FaultPlan faults;
  faults.crash_at_step[victim] = crash_step;
  net.SetFaultPlan(faults);
  auto recovered = service.ExecuteSql(sql, *session);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->stats.cache, CacheOutcome::kHit);
  EXPECT_GE(recovered->stats.failovers, 1u);
  EXPECT_EQ(recovered->stats.policy_epoch, ex->policy->epoch());
  EXPECT_EQ(CanonicalRows(recovered->table), CanonicalRows(cold->table));
  EXPECT_GE(service.Metrics().failovers, 1u);

  // The crash advanced the net's liveness epoch and the stale entry was
  // retired: the next request re-plans (miss) and routes around the dead
  // provider up front — no failover needed.
  auto replanned = service.ExecuteSql(sql, *session);
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  EXPECT_EQ(replanned->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(replanned->stats.failovers, 0u);
  EXPECT_EQ(CanonicalRows(replanned->table), CanonicalRows(cold->table));

  // Liveness-epoch keying works the other way too: once the provider is
  // restored, the routed-around plan stops being served and the service
  // re-plans back onto the (cheaper) full provider set.
  net.Restore(victim);
  net.SetFaultPlan(FaultPlan{});
  auto healed = service.ExecuteSql(sql, *session);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(healed->stats.failovers, 0u);
  EXPECT_EQ(CanonicalRows(healed->table), CanonicalRows(cold->table));
}

}  // namespace
}  // namespace mpq

// Tests for the work-stealing ThreadPool and deterministic ParallelFor.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mpq {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) {
    if (!pool.TryRunOneTask()) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int ran = 0;
  pool.Submit([&] { ran = 1; });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPoolTest, SubmitFromWorkerThread) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&] {
    // Nested submission lands on the submitting worker's own deque.
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    done.fetch_add(1);
  });
  while (done.load() < 11) {
    if (!pool.TryRunOneTask()) std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 11);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
    ThreadPool pool(workers);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    Status st = ParallelFor(&pool, kN, 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  size_t total = 0;
  Status st = ParallelFor(nullptr, 100, 7, [&](size_t begin, size_t end) {
    total += end - begin;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total, 100u);
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreads) {
  // Record the chunk partition at several pool sizes; all must agree.
  std::vector<std::vector<std::pair<size_t, size_t>>> partitions;
  for (size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    Status st = ParallelFor(&pool, 1000, 128, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    std::sort(chunks.begin(), chunks.end());
    partitions.push_back(std::move(chunks));
  }
  EXPECT_EQ(partitions[0], partitions[1]);
  EXPECT_EQ(partitions[1], partitions[2]);
}

TEST(ParallelForTest, ReportsLowestChunkError) {
  ThreadPool pool(4);
  Status st = ParallelFor(&pool, 1000, 10, [&](size_t begin, size_t) {
    if (begin >= 500) {
      return Status::Internal("chunk " + std::to_string(begin));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Which chunks run after failure is racy, but the reported error is always
  // the lowest failing chunk index.
  EXPECT_EQ(st.message(), "chunk 500");
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  Status st = ParallelFor(&pool, 8, 1, [&](size_t, size_t) {
    return ParallelFor(&pool, 64, 8, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPoolTest, DestructorRunsEveryAcceptedTask) {
  // Shutdown stress: destroy the pool while its queues are stuffed. Every
  // task Submit accepted must run exactly once — either by a worker or by
  // the destructor's inline drain — and rejected tasks must run zero times.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 500; ++i) {
        if (pool.Submit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
      // Destructor fires with most of the 500 still queued.
    }
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, SubmitDuringShutdownRunsOrRejectsCleanly) {
  // Tasks that resubmit from inside workers while the destructor races
  // them: every accepted task still runs exactly once, and a Submit that
  // loses the race to the drain returns false instead of stranding work
  // (or worse, touching freed queues).
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    auto pool = std::make_unique<ThreadPool>(2);
    ThreadPool* p = pool.get();
    std::function<void()> resubmit = [&, p] {
      executed.fetch_add(1);
      for (int i = 0; i < 2; ++i) {
        if (p->Submit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    };
    for (int i = 0; i < 100; ++i) {
      if (p->Submit(resubmit)) accepted.fetch_add(1);
    }
    // Destroy immediately: workers are mid-resubmission, the drain must
    // pick up stragglers they enqueued and reject the ones it closed out.
    pool.reset();
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
  }
}

TEST(ParallelForTest, WaitersHelpDrainQueuedTasks) {
  // A single-worker pool saturated by a slow task: ParallelFor's caller must
  // claim chunks itself instead of waiting for the busy worker.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<bool> slow_done{false};
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    slow_done.store(true);
  });
  std::atomic<size_t> covered{0};
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  Status st = ParallelFor(&pool, 256, 16, [&](size_t begin, size_t end) {
    covered.fetch_add(end - begin);
    return Status::OK();
  });
  unblocker.join();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(covered.load(), 256u);
  while (!slow_done.load()) std::this_thread::yield();
}

}  // namespace
}  // namespace mpq

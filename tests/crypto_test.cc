// Tests for the crypto substrate: symmetric cipher, Paillier, OPE, key
// material and encrypted-cell operations.

#include <gtest/gtest.h>

#include "crypto/cipher.h"
#include "crypto/enc_value.h"
#include "crypto/keyring.h"
#include "crypto/ope.h"
#include "crypto/paillier.h"

namespace mpq {
namespace {

TEST(CipherTest, RoundTrip) {
  std::string pt = "hello world";
  std::string ct = SymEncrypt(42, 7, pt);
  EXPECT_NE(ct.substr(8), pt);
  Result<std::string> back = SymDecrypt(42, ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(CipherTest, DeterministicEqualityPreserving) {
  EXPECT_EQ(DetEncrypt(1, "abc"), DetEncrypt(1, "abc"));
  EXPECT_NE(DetEncrypt(1, "abc"), DetEncrypt(1, "abd"));
  EXPECT_NE(DetEncrypt(1, "abc"), DetEncrypt(2, "abc"));
}

TEST(CipherTest, RandomizedHidesEquality) {
  EXPECT_NE(RndEncrypt(1, 100, "abc"), RndEncrypt(1, 101, "abc"));
}

TEST(CipherTest, WrongKeyGarbles) {
  std::string ct = DetEncrypt(1, "abc");
  Result<std::string> wrong = SymDecrypt(2, ct);
  ASSERT_TRUE(wrong.ok());  // stream cipher always "decrypts"
  EXPECT_NE(*wrong, "abc");
}

TEST(CipherTest, ShortCiphertextRejected) {
  EXPECT_FALSE(SymDecrypt(1, "abc").ok());
}

class PaillierTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaillierTest, EncryptDecryptRoundTrip) {
  PaillierKey key = PaillierKeyGen(GetParam());
  for (uint64_t m : {0ull, 1ull, 12345ull, 999999999ull}) {
    uint128 c = PaillierEncrypt(key, m, 0xabcdef + m);
    Result<uint64_t> back = PaillierDecrypt(key, c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
}

TEST_P(PaillierTest, HomomorphicAddition) {
  PaillierKey key = PaillierKeyGen(GetParam());
  uint128 c1 = PaillierEncrypt(key, 1000, 17);
  uint128 c2 = PaillierEncrypt(key, 2345, 23);
  uint128 sum = PaillierAdd(key.n, c1, c2);
  EXPECT_EQ(*PaillierDecrypt(key, sum), 3345u);
}

TEST_P(PaillierTest, SignedEncoding) {
  PaillierKey key = PaillierKeyGen(GetParam());
  for (int64_t v : {-1000000, -1, 0, 1, 999999}) {
    uint64_t enc = PaillierEncodeSigned(key, v);
    EXPECT_EQ(PaillierDecodeSigned(key, enc), v);
  }
}

TEST_P(PaillierTest, HomomorphicSignedSum) {
  PaillierKey key = PaillierKeyGen(GetParam());
  uint128 c1 = PaillierEncrypt(key, PaillierEncodeSigned(key, -500), 3);
  uint128 c2 = PaillierEncrypt(key, PaillierEncodeSigned(key, 200), 5);
  uint128 sum = PaillierAdd(key.n, c1, c2);
  EXPECT_EQ(PaillierDecodeSigned(key, *PaillierDecrypt(key, sum)), -300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierTest,
                         ::testing::Values(1, 2, 7, 42, 1234567));

TEST(PaillierTest, RandomizedCiphertexts) {
  PaillierKey key = PaillierKeyGen(9);
  EXPECT_NE(PaillierEncrypt(key, 5, 100), PaillierEncrypt(key, 5, 101));
}

TEST(PaillierTest, CipherBytesRoundTrip) {
  PaillierKey key = PaillierKeyGen(3);
  uint128 c = PaillierEncrypt(key, 777, 11);
  std::string bytes = PaillierCipherToBytes(c);
  EXPECT_EQ(bytes.size(), 16u);
  EXPECT_EQ(*PaillierCipherFromBytes(bytes), c);
  EXPECT_FALSE(PaillierCipherFromBytes("short").ok());
}

TEST(OpeTest, OrderPreservation) {
  uint64_t key = 99;
  std::vector<int64_t> values = {-1000000, -5, -1, 0, 1, 2, 3, 1000,
                                 123456789};
  std::vector<std::string> cts;
  for (int64_t v : values) cts.push_back(OpeEncryptInt(key, v));
  for (size_t i = 0; i + 1 < cts.size(); ++i) {
    EXPECT_LT(cts[i], cts[i + 1]) << "order broken at " << i;
  }
}

TEST(OpeTest, RoundTripAndKeyCheck) {
  EXPECT_EQ(*OpeDecryptInt(5, OpeEncryptInt(5, -42)), -42);
  // Wrong key: the PRF pad will not match.
  EXPECT_FALSE(OpeDecryptInt(6, OpeEncryptInt(5, -42)).ok());
  EXPECT_FALSE(OpeDecryptInt(5, "bad").ok());
}

TEST(OpeTest, DoubleFixedPoint) {
  uint64_t key = 3;
  Result<std::string> ct = OpeEncryptValue(key, Value(12.3456));
  ASSERT_TRUE(ct.ok());
  Result<Value> back = OpeDecryptValue(key, *ct, DataType::kDouble);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->AsDouble(), 12.3456, 1e-3);
  EXPECT_FALSE(OpeEncryptValue(key, Value(std::string("x"))).ok());
}

TEST(KeyringTest, DistributionEnforcement) {
  KeyRing ring;
  EXPECT_FALSE(ring.Get(1).ok());
  ring.Add(MakeKeyMaterial(77, 1));
  ASSERT_TRUE(ring.Get(1).ok());
  EXPECT_EQ(ring.Get(1)->key_id, 1u);
  EXPECT_EQ(ring.Get(2).status().code(), StatusCode::kNotFound);
}

TEST(KeyringTest, MaterialIsDeterministicPerSeed) {
  KeyMaterial a = MakeKeyMaterial(7, 3);
  KeyMaterial b = MakeKeyMaterial(7, 3);
  EXPECT_EQ(a.sym, b.sym);
  EXPECT_EQ(a.ope, b.ope);
  EXPECT_EQ(a.paillier.n, b.paillier.n);
  KeyMaterial c = MakeKeyMaterial(8, 3);
  EXPECT_NE(a.sym, c.sym);
}

class EncValueTest : public ::testing::Test {
 protected:
  KeyMaterial km_ = MakeKeyMaterial(11, 1);
};

TEST_F(EncValueTest, RoundTripAllSchemes) {
  Value v(int64_t{1234});
  for (EncScheme s : {EncScheme::kRandom, EncScheme::kDeterministic,
                      EncScheme::kOpe, EncScheme::kPaillier}) {
    Result<EncValue> ev = EncryptValue(v, s, 1, km_, 555);
    ASSERT_TRUE(ev.ok()) << EncSchemeName(s);
    Result<Value> back = DecryptValue(*ev, km_, DataType::kInt64);
    ASSERT_TRUE(back.ok()) << EncSchemeName(s);
    EXPECT_EQ(*back, v) << EncSchemeName(s);
  }
}

TEST_F(EncValueTest, PaillierDoubleRoundTrip) {
  Result<EncValue> ev =
      EncryptValue(Value(123.45), EncScheme::kPaillier, 1, km_, 9);
  ASSERT_TRUE(ev.ok());
  Result<Value> back = DecryptValue(*ev, km_, DataType::kDouble);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->AsDouble(), 123.45, 1e-3);
}

TEST_F(EncValueTest, DetSupportsOnlyEquality) {
  Cell a(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell b(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 2));
  Cell c(
      *EncryptValue(Value(int64_t{2}), EncScheme::kDeterministic, 1, km_, 3));
  EXPECT_TRUE(*CompareCells(CmpOp::kEq, a, b));
  EXPECT_TRUE(*CompareCells(CmpOp::kNe, a, c));
  EXPECT_FALSE(CompareCells(CmpOp::kLt, a, c).ok());
}

TEST_F(EncValueTest, OpeSupportsOrder) {
  Cell a(*EncryptValue(Value(int64_t{5}), EncScheme::kOpe, 1, km_, 1));
  Cell b(*EncryptValue(Value(int64_t{9}), EncScheme::kOpe, 1, km_, 2));
  EXPECT_TRUE(*CompareCells(CmpOp::kLt, a, b));
  EXPECT_TRUE(*CompareCells(CmpOp::kGe, b, a));
  EXPECT_TRUE(*CompareCells(CmpOp::kNe, a, b));
}

TEST_F(EncValueTest, RndAndHomNotComparable) {
  Cell a(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 1));
  Cell b(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 2));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, b).ok());
  Cell c(*EncryptValue(Value(int64_t{1}), EncScheme::kPaillier, 1, km_, 3));
  Cell d(*EncryptValue(Value(int64_t{1}), EncScheme::kPaillier, 1, km_, 4));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, c, d).ok());
}

TEST_F(EncValueTest, CrossKeyAndMixedComparisonsRejected) {
  KeyMaterial other = MakeKeyMaterial(11, 2);
  Cell a(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell b(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 2, other, 1));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, b).ok());
  Cell plain(Value(int64_t{1}));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, plain).ok());
}

TEST_F(EncValueTest, GroupKeysForDetAndOpeOnly) {
  Cell det(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell ope(*EncryptValue(Value(int64_t{1}), EncScheme::kOpe, 1, km_, 1));
  Cell rnd(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 1));
  EXPECT_TRUE(CellGroupKey(det).ok());
  EXPECT_TRUE(CellGroupKey(ope).ok());
  EXPECT_FALSE(CellGroupKey(rnd).ok());
  EXPECT_TRUE(CellGroupKey(Cell(Value(int64_t{1}))).ok());
}

TEST_F(EncValueTest, SchemeCostsOrdered) {
  EXPECT_LT(EncSchemeCpuMicros(EncScheme::kDeterministic),
            EncSchemeCpuMicros(EncScheme::kOpe));
  EXPECT_LT(EncSchemeCpuMicros(EncScheme::kOpe),
            EncSchemeCpuMicros(EncScheme::kPaillier));
  EXPECT_GT(EncSchemeCiphertextBytes(EncScheme::kDeterministic, 8), 8);
}

TEST_F(EncValueTest, ToStringTagsScheme) {
  EncValue ev = *EncryptValue(Value(int64_t{1}), EncScheme::kOpe, 3, km_, 1);
  std::string s = ev.ToString();
  EXPECT_NE(s.find("OPE"), std::string::npos);
  EXPECT_NE(s.find("k3"), std::string::npos);
}

}  // namespace
}  // namespace mpq

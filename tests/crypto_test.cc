// Tests for the crypto substrate: symmetric cipher, Paillier, OPE, key
// material and encrypted-cell operations.

#include <gtest/gtest.h>

#include "crypto/cipher.h"
#include "crypto/column_codec.h"
#include "crypto/enc_value.h"
#include "crypto/keyring.h"
#include "crypto/ope.h"
#include "crypto/paillier.h"
#include "exec/column.h"

namespace mpq {
namespace {

TEST(CipherTest, RoundTrip) {
  std::string pt = "hello world";
  std::string ct = SymEncrypt(42, 7, pt);
  EXPECT_NE(ct.substr(8), pt);
  Result<std::string> back = SymDecrypt(42, ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(CipherTest, DeterministicEqualityPreserving) {
  EXPECT_EQ(DetEncrypt(1, "abc"), DetEncrypt(1, "abc"));
  EXPECT_NE(DetEncrypt(1, "abc"), DetEncrypt(1, "abd"));
  EXPECT_NE(DetEncrypt(1, "abc"), DetEncrypt(2, "abc"));
}

TEST(CipherTest, RandomizedHidesEquality) {
  EXPECT_NE(RndEncrypt(1, 100, "abc"), RndEncrypt(1, 101, "abc"));
}

TEST(CipherTest, WrongKeyGarbles) {
  std::string ct = DetEncrypt(1, "abc");
  Result<std::string> wrong = SymDecrypt(2, ct);
  ASSERT_TRUE(wrong.ok());  // stream cipher always "decrypts"
  EXPECT_NE(*wrong, "abc");
}

TEST(CipherTest, ShortCiphertextRejected) {
  EXPECT_FALSE(SymDecrypt(1, "abc").ok());
}

class PaillierTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaillierTest, EncryptDecryptRoundTrip) {
  PaillierKey key = PaillierKeyGen(GetParam());
  for (uint64_t m : {0ull, 1ull, 12345ull, 999999999ull}) {
    uint128 c = PaillierEncrypt(key, m, 0xabcdef + m);
    Result<uint64_t> back = PaillierDecrypt(key, c);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
}

TEST_P(PaillierTest, HomomorphicAddition) {
  PaillierKey key = PaillierKeyGen(GetParam());
  uint128 c1 = PaillierEncrypt(key, 1000, 17);
  uint128 c2 = PaillierEncrypt(key, 2345, 23);
  uint128 sum = PaillierAdd(key.n, c1, c2);
  EXPECT_EQ(*PaillierDecrypt(key, sum), 3345u);
}

TEST_P(PaillierTest, SignedEncoding) {
  PaillierKey key = PaillierKeyGen(GetParam());
  for (int64_t v : {-1000000, -1, 0, 1, 999999}) {
    uint64_t enc = PaillierEncodeSigned(key, v);
    EXPECT_EQ(PaillierDecodeSigned(key, enc), v);
  }
}

TEST_P(PaillierTest, HomomorphicSignedSum) {
  PaillierKey key = PaillierKeyGen(GetParam());
  uint128 c1 = PaillierEncrypt(key, PaillierEncodeSigned(key, -500), 3);
  uint128 c2 = PaillierEncrypt(key, PaillierEncodeSigned(key, 200), 5);
  uint128 sum = PaillierAdd(key.n, c1, c2);
  EXPECT_EQ(PaillierDecodeSigned(key, *PaillierDecrypt(key, sum)), -300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierTest,
                         ::testing::Values(1, 2, 7, 42, 1234567));

TEST(PaillierTest, RandomizedCiphertexts) {
  PaillierKey key = PaillierKeyGen(9);
  EXPECT_NE(PaillierEncrypt(key, 5, 100), PaillierEncrypt(key, 5, 101));
}

TEST(PaillierTest, CipherBytesRoundTrip) {
  PaillierKey key = PaillierKeyGen(3);
  uint128 c = PaillierEncrypt(key, 777, 11);
  std::string bytes = PaillierCipherToBytes(c);
  EXPECT_EQ(bytes.size(), 16u);
  EXPECT_EQ(*PaillierCipherFromBytes(bytes), c);
  EXPECT_FALSE(PaillierCipherFromBytes("short").ok());
}

TEST(OpeTest, OrderPreservation) {
  uint64_t key = 99;
  std::vector<int64_t> values = {-1000000, -5, -1, 0, 1, 2, 3, 1000,
                                 123456789};
  std::vector<std::string> cts;
  for (int64_t v : values) cts.push_back(OpeEncryptInt(key, v));
  for (size_t i = 0; i + 1 < cts.size(); ++i) {
    EXPECT_LT(cts[i], cts[i + 1]) << "order broken at " << i;
  }
}

TEST(OpeTest, RoundTripAndKeyCheck) {
  EXPECT_EQ(*OpeDecryptInt(5, OpeEncryptInt(5, -42)), -42);
  // Wrong key: the PRF pad will not match.
  EXPECT_FALSE(OpeDecryptInt(6, OpeEncryptInt(5, -42)).ok());
  EXPECT_FALSE(OpeDecryptInt(5, "bad").ok());
}

TEST(OpeTest, DoubleFixedPoint) {
  uint64_t key = 3;
  Result<std::string> ct = OpeEncryptValue(key, Value(12.3456));
  ASSERT_TRUE(ct.ok());
  Result<Value> back = OpeDecryptValue(key, *ct, DataType::kDouble);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->AsDouble(), 12.3456, 1e-3);
  EXPECT_FALSE(OpeEncryptValue(key, Value(std::string("x"))).ok());
}

TEST(KeyringTest, DistributionEnforcement) {
  KeyRing ring;
  EXPECT_FALSE(ring.Get(1).ok());
  ring.Add(MakeKeyMaterial(77, 1));
  ASSERT_TRUE(ring.Get(1).ok());
  EXPECT_EQ(ring.Get(1)->key_id, 1u);
  EXPECT_EQ(ring.Get(2).status().code(), StatusCode::kNotFound);
}

TEST(KeyringTest, MaterialIsDeterministicPerSeed) {
  KeyMaterial a = MakeKeyMaterial(7, 3);
  KeyMaterial b = MakeKeyMaterial(7, 3);
  EXPECT_EQ(a.sym, b.sym);
  EXPECT_EQ(a.ope, b.ope);
  EXPECT_EQ(a.paillier.n, b.paillier.n);
  KeyMaterial c = MakeKeyMaterial(8, 3);
  EXPECT_NE(a.sym, c.sym);
}

class EncValueTest : public ::testing::Test {
 protected:
  KeyMaterial km_ = MakeKeyMaterial(11, 1);
};

TEST_F(EncValueTest, RoundTripAllSchemes) {
  Value v(int64_t{1234});
  for (EncScheme s : {EncScheme::kRandom, EncScheme::kDeterministic,
                      EncScheme::kOpe, EncScheme::kPaillier}) {
    Result<EncValue> ev = EncryptValue(v, s, 1, km_, 555);
    ASSERT_TRUE(ev.ok()) << EncSchemeName(s);
    Result<Value> back = DecryptValue(*ev, km_, DataType::kInt64);
    ASSERT_TRUE(back.ok()) << EncSchemeName(s);
    EXPECT_EQ(*back, v) << EncSchemeName(s);
  }
}

TEST_F(EncValueTest, PaillierDoubleRoundTrip) {
  Result<EncValue> ev =
      EncryptValue(Value(123.45), EncScheme::kPaillier, 1, km_, 9);
  ASSERT_TRUE(ev.ok());
  Result<Value> back = DecryptValue(*ev, km_, DataType::kDouble);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->AsDouble(), 123.45, 1e-3);
}

TEST_F(EncValueTest, DetSupportsOnlyEquality) {
  Cell a(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell b(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 2));
  Cell c(
      *EncryptValue(Value(int64_t{2}), EncScheme::kDeterministic, 1, km_, 3));
  EXPECT_TRUE(*CompareCells(CmpOp::kEq, a, b));
  EXPECT_TRUE(*CompareCells(CmpOp::kNe, a, c));
  EXPECT_FALSE(CompareCells(CmpOp::kLt, a, c).ok());
}

TEST_F(EncValueTest, OpeSupportsOrder) {
  Cell a(*EncryptValue(Value(int64_t{5}), EncScheme::kOpe, 1, km_, 1));
  Cell b(*EncryptValue(Value(int64_t{9}), EncScheme::kOpe, 1, km_, 2));
  EXPECT_TRUE(*CompareCells(CmpOp::kLt, a, b));
  EXPECT_TRUE(*CompareCells(CmpOp::kGe, b, a));
  EXPECT_TRUE(*CompareCells(CmpOp::kNe, a, b));
}

TEST_F(EncValueTest, RndAndHomNotComparable) {
  Cell a(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 1));
  Cell b(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 2));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, b).ok());
  Cell c(*EncryptValue(Value(int64_t{1}), EncScheme::kPaillier, 1, km_, 3));
  Cell d(*EncryptValue(Value(int64_t{1}), EncScheme::kPaillier, 1, km_, 4));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, c, d).ok());
}

TEST_F(EncValueTest, CrossKeyAndMixedComparisonsRejected) {
  KeyMaterial other = MakeKeyMaterial(11, 2);
  Cell a(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell b(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 2, other, 1));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, b).ok());
  Cell plain(Value(int64_t{1}));
  EXPECT_FALSE(CompareCells(CmpOp::kEq, a, plain).ok());
}

TEST_F(EncValueTest, GroupKeysForDetAndOpeOnly) {
  Cell det(
      *EncryptValue(Value(int64_t{1}), EncScheme::kDeterministic, 1, km_, 1));
  Cell ope(*EncryptValue(Value(int64_t{1}), EncScheme::kOpe, 1, km_, 1));
  Cell rnd(*EncryptValue(Value(int64_t{1}), EncScheme::kRandom, 1, km_, 1));
  EXPECT_TRUE(CellGroupKey(det).ok());
  EXPECT_TRUE(CellGroupKey(ope).ok());
  EXPECT_FALSE(CellGroupKey(rnd).ok());
  EXPECT_TRUE(CellGroupKey(Cell(Value(int64_t{1}))).ok());
}

TEST_F(EncValueTest, SchemeCostsOrdered) {
  EXPECT_LT(EncSchemeCpuMicros(EncScheme::kDeterministic),
            EncSchemeCpuMicros(EncScheme::kOpe));
  EXPECT_LT(EncSchemeCpuMicros(EncScheme::kOpe),
            EncSchemeCpuMicros(EncScheme::kPaillier));
  EXPECT_GT(EncSchemeCiphertextBytes(EncScheme::kDeterministic, 8), 8);
}

TEST_F(EncValueTest, ToStringTagsScheme) {
  EncValue ev = *EncryptValue(Value(int64_t{1}), EncScheme::kOpe, 3, km_, 1);
  std::string s = ev.ToString();
  EXPECT_NE(s.find("OPE"), std::string::npos);
  EXPECT_NE(s.find("k3"), std::string::npos);
}

// ------------------------------------------------------------------- KATs ---
//
// Known-answer tests: ciphertexts frozen from the current implementation.
// Any change to the cipher cores, encodings, or nonce handling that alters
// bytes on the wire (and would therefore break cross-version equality
// comparisons, OPE order, or stored data) fails here loudly.

namespace {

std::string Hex(const std::string& s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  for (unsigned char c : s) {
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

}  // namespace

TEST(CryptoKat, OpeOrderPreservingFixedVectors) {
  // Key 0xfeedbeef; ciphertext bytes are both frozen and strictly
  // increasing with the plaintext — order preservation on exact vectors,
  // not just sampled pairs.
  const uint64_t key = 0xfeedbeefull;
  const std::pair<int64_t, const char*> kat[] = {
      {-1000000, "0000000000007ffffffffff0bdc0338e"},
      {-1, "0000000000007fffffffffffffff0c13"},
      {0, "0000000000008000000000000000fd8d"},
      {1, "00000000000080000000000000019ff3"},
      {42, "000000000000800000000000002a10bb"},
      {1000, "00000000000080000000000003e86785"},
      {123456789, "00000000000080000000075bcd1541ed"},
  };
  std::string prev;
  for (const auto& [v, want] : kat) {
    std::string ct = OpeEncryptInt(key, v);
    EXPECT_EQ(Hex(ct), want) << "OPE(" << v << ")";
    if (!prev.empty()) {
      EXPECT_LT(prev, ct) << "order broken at " << v;
    }
    prev = ct;
    EXPECT_EQ(*OpeDecryptInt(key, ct), v);
  }
}

TEST(CryptoKat, PaillierAdditiveHomomorphismFixedVectors) {
  // Seed 1234; messages 123 and -45 under nonces 17 and 23. The ciphertext
  // bytes, their homomorphic sum, and the decrypted signed total are all
  // frozen.
  PaillierKey key = PaillierKeyGen(1234);
  EXPECT_EQ(key.n, 2012814128907193631ull);
  uint128 c1 = PaillierEncrypt(key, PaillierEncodeSigned(key, 123), 17);
  uint128 c2 = PaillierEncrypt(key, PaillierEncodeSigned(key, -45), 23);
  EXPECT_EQ(Hex(PaillierCipherToBytes(c1)), "01fa1a095fbb1941e368bd9b65b6d501");
  EXPECT_EQ(Hex(PaillierCipherToBytes(c2)), "0d4c504ecf4bfaa7c0425659fc650600");
  uint128 sum = PaillierAdd(key.n, c1, c2);
  EXPECT_EQ(Hex(PaillierCipherToBytes(sum)),
            "98106646b7a1cb817f0c6b2dbe2a2e00");
  EXPECT_EQ(PaillierDecodeSigned(key, *PaillierDecrypt(key, sum)), 78);
  // The accumulation lifecycle lands on the same frozen ciphertext bytes.
  PaillierSumCtx ctx(key.n);
  ctx.Reset();
  ctx.Accumulate(c1);
  ctx.Accumulate(c2);
  EXPECT_EQ(ctx.accumulated(), 2u);
  EXPECT_EQ(Hex(PaillierCipherToBytes(ctx.Finalize())),
            "98106646b7a1cb817f0c6b2dbe2a2e00");
}

TEST(CryptoKat, DeterministicAndOpeCellFixedVectors) {
  // KeyMaterial(seed=2024, key_id=7); DET and OPE cells over int 77.
  KeyMaterial km = MakeKeyMaterial(2024, 7);
  EncValue det =
      *EncryptValue(Value(int64_t{77}), EncScheme::kDeterministic, 7, km, 0);
  EXPECT_EQ(Hex(det.blob), "95c4b291a9eb15a235b37efbc8113f5089");
  EncValue ope = *EncryptValue(Value(int64_t{77}), EncScheme::kOpe, 7, km, 0);
  EXPECT_EQ(Hex(ope.blob), "000000000000800000000000004dde6b");
}

TEST(CryptoKat, CodecSpansEqualSingleCellOnContiguousColumns) {
  // ColumnCodec::EncryptSpan over a contiguous column must produce exactly
  // the ciphertexts of per-cell EncryptValue drawing nonce_base + i — the
  // guarantee that lets the engine encrypt whole columns batch-parallel
  // without changing a single output bit.
  KeyMaterial km = MakeKeyMaterial(99, 3);
  ColumnCodec codec(km);
  const uint64_t nonce_base = 0x1000;
  const std::vector<int64_t> values = {5, -2, 0, 999, 5};
  for (EncScheme s : {EncScheme::kRandom, EncScheme::kDeterministic,
                      EncScheme::kOpe, EncScheme::kPaillier}) {
    std::vector<Cell> cells;
    cells.reserve(values.size());
    for (int64_t v : values) cells.emplace_back(Value(v));
    ColumnData column = ColumnFromCells(std::move(cells));
    std::vector<EncValue> encs(column.size());
    ASSERT_TRUE(codec.EncryptSpan(column, 0, column.size(), s, nonce_base,
                                  encs.data())
                    .ok())
        << EncSchemeName(s);
    for (size_t i = 0; i < values.size(); ++i) {
      Result<EncValue> single =
          EncryptValue(Value(values[i]), s, 3, km, nonce_base + i);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(encs[i], *single) << EncSchemeName(s) << " cell " << i;
    }
    // And DecryptSpan inverts the whole contiguous ciphertext column.
    ColumnData enc_column = ColumnFromEnc(std::move(encs));
    std::vector<Cell> roundtrip(enc_column.size());
    ASSERT_TRUE(codec.DecryptSpan(enc_column, 0, enc_column.size(),
                                  DataType::kInt64, false, roundtrip.data())
                    .ok());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(roundtrip[i].plain(), Value(values[i]))
          << EncSchemeName(s) << " cell " << i;
    }
  }
}

// The per-key precompute (CRT + Montgomery + fixed-exponent window
// schedules) and the public Montgomery add-context are pure accelerations:
// every output must equal the schoolbook PowMod/MulMod path bit-for-bit.

/// Independent schoolbook modular exponentiation (double-and-add MulMod),
/// the reference the precompute paths are checked against.
uint128 MulModRef(uint128 a, uint128 b, uint128 m) {
  a %= m;
  uint128 result = 0;
  while (b > 0) {
    if (b & 1) {
      result += a;
      if (result >= m) result -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return result;
}

uint128 PowModRef(uint128 base, uint128 exp, uint128 m) {
  uint128 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulModRef(result, base, m);
    base = MulModRef(base, base, m);
    exp >>= 1;
  }
  return result;
}
TEST(PaillierPrecompTest, EncryptDecryptBitIdenticalToSchoolbook) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 20250729ull}) {
    PaillierKey key = PaillierKeyGen(seed);
    PaillierPrecomp pre(key);
    ASSERT_TRUE(pre.valid());
    for (uint64_t i = 0; i < 50; ++i) {
      uint64_t m = (i * 0x9e3779b97f4a7c15ull) % key.n;
      uint64_t rand = i * 1099511628211ull + 3;
      uint128 slow = PaillierEncrypt(key, m, rand);
      uint128 fast = pre.Encrypt(m, rand);
      ASSERT_EQ(PaillierCipherToBytes(fast), PaillierCipherToBytes(slow))
          << "seed " << seed << " i " << i;
      Result<uint64_t> slow_m = PaillierDecrypt(key, slow);
      Result<uint64_t> fast_m = pre.Decrypt(fast);
      ASSERT_TRUE(slow_m.ok());
      ASSERT_TRUE(fast_m.ok());
      ASSERT_EQ(*fast_m, *slow_m);
      ASSERT_EQ(*fast_m, m);
    }
    // The blinding exponentiation itself, over edge bases.
    for (uint64_t base :
         {uint64_t{0}, uint64_t{1}, uint64_t{2}, key.n - 1, key.n,
          key.n + 17}) {
      EXPECT_EQ(PaillierCipherToBytes(pre.PowN(base)),
                PaillierCipherToBytes(PowModRef(base, key.n, key.n2())))
          << "base " << base;
    }
  }
}

TEST(PaillierPrecompTest, MontgomeryAddBitIdenticalToMulModLadder) {
  for (uint64_t seed : {2ull, 11ull, 77ull}) {
    PaillierKey key = PaillierKeyGen(seed);
    PaillierSumCtx ctx(key.n);
    uint128 acc_slow = 0, acc_fast = 0;
    bool first = true;
    for (uint64_t i = 0; i < 64; ++i) {
      uint128 c = PaillierEncrypt(key, i * 31 % key.n, i + 1);
      if (first) {
        acc_slow = acc_fast = c;
        first = false;
        continue;
      }
      acc_slow = PaillierAdd(key.n, acc_slow, c);
      acc_fast = ctx.Add(acc_fast, c);
      ASSERT_EQ(PaillierCipherToBytes(acc_fast),
                PaillierCipherToBytes(acc_slow))
          << "seed " << seed << " step " << i;
    }
    Result<uint64_t> sum = PaillierDecrypt(key, acc_fast);
    ASSERT_TRUE(sum.ok());
    uint64_t expect = 0;
    for (uint64_t i = 0; i < 64; ++i) expect = (expect + i * 31) % key.n;
    EXPECT_EQ(*sum, expect);
  }
}

TEST(PaillierPrecompTest, AccumulationLifecycleBitIdenticalToAddChain) {
  // Every prefix length of the reusable lifecycle — the lazy group-by fold —
  // must land on exactly the ciphertext of the eager Add() chain, and the
  // batched entry point must match the streaming one, across Reset() reuse.
  for (uint64_t seed : {2ull, 11ull, 77ull}) {
    PaillierKey key = PaillierKeyGen(seed);
    PaillierSumCtx ctx(key.n);
    std::vector<uint128> cs;
    for (uint64_t i = 0; i < 64; ++i) {
      cs.push_back(PaillierEncrypt(key, i * 31 % key.n, i + 1));
    }
    uint128 chain = 0;
    ctx.Reset();
    for (size_t k = 0; k < cs.size(); ++k) {
      chain = k == 0 ? cs[k] : ctx.Add(chain, cs[k]);
      ctx.Accumulate(cs[k]);
      ASSERT_EQ(ctx.accumulated(), k + 1);
      ASSERT_EQ(PaillierCipherToBytes(ctx.Finalize()),
                PaillierCipherToBytes(chain))
          << "seed " << seed << " prefix " << k + 1;
    }
    // AccumulateMany in one shot, and split at an uneven boundary, on the
    // same context after Reset().
    ctx.Reset();
    ctx.AccumulateMany(cs.data(), cs.size());
    EXPECT_EQ(PaillierCipherToBytes(ctx.Finalize()),
              PaillierCipherToBytes(chain));
    ctx.Reset();
    ctx.AccumulateMany(cs.data(), 7);
    ctx.AccumulateMany(cs.data() + 7, cs.size() - 7);
    EXPECT_EQ(ctx.accumulated(), cs.size());
    EXPECT_EQ(PaillierCipherToBytes(ctx.Finalize()),
              PaillierCipherToBytes(chain));
    // Empty fold: Finalize is the additive identity placeholder (0).
    ctx.Reset();
    EXPECT_EQ(ctx.accumulated(), 0u);
    EXPECT_EQ(ctx.Finalize(), uint128{0});
  }
  // Degenerate (even) modulus: the lifecycle falls back to the schoolbook
  // chain, exactly like Add().
  PaillierSumCtx degenerate(/*n=*/6);
  uint128 a = 5, b = 11, c = 23;
  uint128 chain = PaillierAdd(6, PaillierAdd(6, a, b), c);
  degenerate.Reset();
  degenerate.Accumulate(a);
  degenerate.Accumulate(b);
  degenerate.Accumulate(c);
  EXPECT_EQ(degenerate.Finalize(), chain);
  EXPECT_EQ(degenerate.Add(degenerate.Add(a, b), c), chain);
}

TEST(PaillierPrecompTest, InvalidKeyFallsBackGracefully) {
  PaillierKey bogus;  // no factors
  PaillierPrecomp pre(bogus);
  EXPECT_FALSE(pre.valid());
  // KeyMaterial always carries a valid precompute for generated keys.
  KeyMaterial km = MakeKeyMaterial(5, 9);
  ASSERT_NE(km.hom_precomp, nullptr);
  EXPECT_TRUE(km.hom_precomp->valid());
}

}  // namespace
}  // namespace mpq

// Unit tests for plan construction, validation, traversal and printing.

#include <gtest/gtest.h>

#include "algebra/plan_builder.h"
#include "algebra/plan_printer.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakePaperExample(); }
  std::unique_ptr<PaperExample> ex_;
};

TEST_F(AlgebraTest, BuildAndValidateRunningExample) {
  PlanPtr plan = ex_->BuildQueryPlan();
  EXPECT_EQ(CountNodes(plan.get()), 7);
  EXPECT_TRUE(ValidatePlan(plan.get(), ex_->catalog).ok());
}

TEST_F(AlgebraTest, PreOrderIdsAndFind) {
  PlanPtr plan = ex_->BuildQueryPlan();
  EXPECT_EQ(plan->id, 0);
  const PlanNode* hosp = FindNode(plan.get(), PaperExample::kHospLeaf);
  ASSERT_NE(hosp, nullptr);
  EXPECT_EQ(hosp->kind, OpKind::kBase);
  EXPECT_EQ(hosp->rel, ex_->hosp);
  EXPECT_EQ(FindNode(plan.get(), 99), nullptr);
}

TEST_F(AlgebraTest, PostOrderVisitsChildrenFirst) {
  PlanPtr plan = ex_->BuildQueryPlan();
  std::vector<const PlanNode*> order = PostOrder(
      static_cast<const PlanNode*>(plan.get()));
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.front()->kind, OpKind::kBase);
  EXPECT_EQ(order.back()->id, 0);
}

TEST_F(AlgebraTest, CloneIsDeep) {
  PlanPtr plan = ex_->BuildQueryPlan();
  PlanPtr copy = plan->Clone();
  EXPECT_EQ(CountNodes(copy.get()), 7);
  EXPECT_EQ(copy->id, plan->id);
  // Mutating the copy leaves the original untouched.
  copy->predicates.clear();
  EXPECT_FALSE(plan->predicates.empty());
}

TEST_F(AlgebraTest, VisibleAttrsPerOperator) {
  PlanPtr plan = ex_->BuildQueryPlan();
  const AttrRegistry& reg = ex_->catalog.attrs();
  EXPECT_EQ(VisibleAttrs(FindNode(plan.get(), PaperExample::kProject),
                         ex_->catalog)
                .ToString(reg),
            "SDT");
  EXPECT_EQ(VisibleAttrs(FindNode(plan.get(), PaperExample::kJoin),
                         ex_->catalog)
                .ToString(reg),
            "SDTCP");
  EXPECT_EQ(VisibleAttrs(FindNode(plan.get(), PaperExample::kGroupBy),
                         ex_->catalog)
                .ToString(reg),
            "TP");
}

TEST_F(AlgebraTest, ValidationCatchesBadProjection) {
  PlanBuilder b = ex_->builder();
  // Projecting C (of Ins) from Hosp.
  PlanPtr bad = Project(b.Rel("Hosp"), b.Set("S,C"));
  AssignIds(bad.get());
  Status st = ValidatePlan(bad.get(), ex_->catalog);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("projection"), std::string::npos);
}

TEST_F(AlgebraTest, ValidationCatchesDanglingPredicate) {
  PlanBuilder b = ex_->builder();
  PlanPtr bad = Select(Project(b.Rel("Hosp"), b.Set("S,T")),
                       {b.Pv("D", CmpOp::kEq, Value(std::string("x")))});
  AssignIds(bad.get());
  EXPECT_FALSE(ValidatePlan(bad.get(), ex_->catalog).ok());
}

TEST_F(AlgebraTest, ValidationCatchesEmptyProjectionAndCondition) {
  PlanBuilder b = ex_->builder();
  PlanPtr p1 = Project(b.Rel("Hosp"), {});
  AssignIds(p1.get());
  EXPECT_FALSE(ValidatePlan(p1.get(), ex_->catalog).ok());
  PlanPtr p2 = Select(b.Rel("Hosp"), {});
  AssignIds(p2.get());
  EXPECT_FALSE(ValidatePlan(p2.get(), ex_->catalog).ok());
}

TEST_F(AlgebraTest, ValidationCatchesJoinWithValuePredicate) {
  PlanBuilder b = ex_->builder();
  PlanPtr bad = Join(b.Rel("Hosp"), b.Rel("Ins"),
                     {b.Pv("S", CmpOp::kEq, Value(int64_t{1}))});
  AssignIds(bad.get());
  EXPECT_FALSE(ValidatePlan(bad.get(), ex_->catalog).ok());
}

TEST_F(AlgebraTest, ValidationCatchesUdfOutputNotInInputs) {
  PlanBuilder b = ex_->builder();
  PlanPtr bad = Udf(b.Rel("Hosp"), "f", b.Set("S,B"), b.A("T"));
  AssignIds(bad.get());
  EXPECT_FALSE(ValidatePlan(bad.get(), ex_->catalog).ok());
}

TEST_F(AlgebraTest, PredicateToString) {
  PlanBuilder b = ex_->builder();
  Predicate p1 = b.Pv("D", CmpOp::kEq, Value(std::string("stroke")));
  EXPECT_EQ(p1.ToString(ex_->catalog.attrs()), "D='stroke'");
  Predicate p2 = b.Pa("S", CmpOp::kLe, "C");
  EXPECT_EQ(p2.ToString(ex_->catalog.attrs()), "S<=C");
}

TEST_F(AlgebraTest, PlanPrinterShowsStructure) {
  PlanPtr plan = ex_->BuildQueryPlan();
  std::string text = PrintPlan(plan.get(), ex_->catalog);
  EXPECT_NE(text.find("Hosp"), std::string::npos);
  EXPECT_NE(text.find("Ins"), std::string::npos);
  EXPECT_NE(text.find("σ"), std::string::npos);
  EXPECT_NE(text.find("⋈"), std::string::npos);
  EXPECT_NE(text.find("γ"), std::string::npos);
}

TEST_F(AlgebraTest, PlanPrinterShowsProfilesAndAssignment) {
  PlanPtr plan = ex_->BuildQueryPlan();
  std::unordered_map<int, SubjectId> assign{{PaperExample::kJoin, ex_->X}};
  PrintOptions opts;
  opts.show_profiles = true;
  opts.assignment = &assign;
  opts.subjects = &ex_->subjects;
  std::string text = PrintPlan(plan.get(), ex_->catalog, opts);
  EXPECT_NE(text.find("@X"), std::string::npos);
  EXPECT_NE(text.find("v:"), std::string::npos);
}

TEST_F(AlgebraTest, PlanToDotIsWellFormed) {
  PlanPtr plan = ex_->BuildQueryPlan();
  std::string dot = PlanToDot(plan.get(), ex_->catalog);
  EXPECT_EQ(dot.rfind("digraph plan {", 0), 0u);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST_F(AlgebraTest, AggregateToString) {
  PlanBuilder b = ex_->builder();
  EXPECT_EQ(Aggregate::Make(AggFunc::kAvg, b.A("P"))
                .ToString(ex_->catalog.attrs()),
            "avg(P)");
  EXPECT_EQ(Aggregate::CountStar(b.A("P")).ToString(ex_->catalog.attrs()),
            "count(*)");
}

TEST_F(AlgebraTest, EvalCmpCoversAllOperators) {
  Value a(int64_t{1}), c(int64_t{2});
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, a, c));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, c, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, c, c));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, a, c));
}

}  // namespace
}  // namespace mpq

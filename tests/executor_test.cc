// Tests for the tuple execution engine, plaintext and over ciphertexts.

#include <gtest/gtest.h>

#include "assign/schemes.h"
#include "exec/executor.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    hosp_ = ex_->HospData();
    ins_ = ex_->InsData();
    keyring_.Add(MakeKeyMaterial(1, 0));  // default key id 0
    ctx_.catalog = &ex_->catalog;
    ctx_.base_tables[ex_->hosp] = &hosp_;
    ctx_.base_tables[ex_->ins] = &ins_;
    ctx_.keyring = &keyring_;
    ctx_.dispatcher_keyring = &keyring_;
    ctx_.crypto = &crypto_;
    KeyMaterial km = *keyring_.Get(0);
    ctx_.public_modulus = std::make_shared<HomKeyDirectory>(
        HomKeyDirectory{{0, km.paillier.n}});
  }

  PlanPtr Finish(PlanPtr p) {
    PlanPtr out = std::move(FinishPlan(std::move(p), ex_->catalog)).value();
    return out;
  }

  std::unique_ptr<PaperExample> ex_;
  Table hosp_, ins_;
  KeyRing keyring_;
  CryptoPlan crypto_;
  ExecContext ctx_;
};

TEST_F(ExecutorTest, BaseScan) {
  PlanPtr p = Finish(Base(ex_->hosp));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->num_columns(), 4u);
}

TEST_F(ExecutorTest, ProjectKeepsRequestedColumns) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(Project(b.Rel("Hosp"), b.Set("S,T")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_EQ(t->num_rows(), 4u);
}

TEST_F(ExecutorTest, SelectFilters) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(Select(
      b.Rel("Hosp"), {b.Pv("D", CmpOp::kEq, Value(std::string("stroke")))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3u);
}

TEST_F(ExecutorTest, SelectRangeOnInt) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Select(b.Rel("Hosp"), {b.Pv("B", CmpOp::kGt, Value(int64_t{1975}))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);  // 1985, 1990
}

TEST_F(ExecutorTest, HashJoinMatchesKeys) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Join(b.Rel("Hosp"), b.Rel("Ins"), {b.Pa("S", CmpOp::kEq, "C")}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->num_columns(), 6u);
}

TEST_F(ExecutorTest, NonEquiJoinNestedLoop) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Join(b.Rel("Hosp"), b.Rel("Ins"), {b.Pa("S", CmpOp::kLt, "C")}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  // S values 100..103 vs C values 100..103: pairs with S<C = 3+2+1 = 6.
  EXPECT_EQ(t->num_rows(), 6u);
}

TEST_F(ExecutorTest, CartesianProducesAllPairs) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(Cartesian(b.Rel("Hosp"), b.Rel("Ins")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 16u);
}

TEST_F(ExecutorTest, GroupByAggregates) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(GroupBy(b.Rel("Hosp"), b.Set("D"),
                             {Aggregate::Make(AggFunc::kMin, b.A("B")),
                              Aggregate::CountStar(b.A("S"))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);  // stroke, flu
  // Find the stroke group: min(B)=1960, count=3.
  int d_col = t->ColIndex(b.A("D"));
  int b_col = t->ColIndex(b.A("B"));
  int s_col = t->ColIndex(b.A("S"));
  bool found = false;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    if (t->row(r)[static_cast<size_t>(d_col)].plain() ==
        Value(std::string("stroke"))) {
      found = true;
      EXPECT_EQ(t->row(r)[static_cast<size_t>(b_col)].plain(),
                Value(int64_t{1960}));
      EXPECT_EQ(t->row(r)[static_cast<size_t>(s_col)].plain(),
                Value(int64_t{3}));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, GlobalAggregateNoGroups) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      GroupBy(b.Rel("Ins"), {}, {Aggregate::Make(AggFunc::kSum, b.A("P"))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_NEAR(t->row(0)[0].plain().AsDouble(), 450.0, 1e-9);
}

TEST_F(ExecutorTest, PlaintextRunningExampleResult) {
  PlanPtr plan = ex_->BuildQueryPlan();
  Result<Table> t = ExecutePlan(plan.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // stroke patients: (tpa: 120, 200 → avg 160 > 100 keep), (surgery: 50 → drop)
  ASSERT_EQ(t->num_rows(), 1u);
  PlanBuilder b = ex_->builder();
  int t_col = t->ColIndex(b.A("T"));
  int p_col = t->ColIndex(b.A("P"));
  EXPECT_EQ(t->row(0)[static_cast<size_t>(t_col)].plain(),
            Value(std::string("tpa")));
  EXPECT_NEAR(t->row(0)[static_cast<size_t>(p_col)].plain().AsDouble(), 160.0,
              1e-9);
}

TEST_F(ExecutorTest, EncryptDecryptRoundTripInPlan) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("S")] = EncScheme::kDeterministic;
  PlanPtr p = Finish(Decrypt(Encrypt(b.Rel("Hosp"), b.Set("S")), b.Set("S")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->row(0)[0].plain(), Value(int64_t{100}));
  EXPECT_FALSE(t->columns()[0].encrypted);
}

TEST_F(ExecutorTest, SelectOnDetEncryptedColumn) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("D")] = EncScheme::kDeterministic;
  PlanPtr p = Finish(
      Select(Encrypt(b.Rel("Hosp"), b.Set("D")),
             {b.Pv("D", CmpOp::kEq, Value(std::string("stroke")))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 3u);
}

TEST_F(ExecutorTest, RangeOnOpeEncryptedColumn) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("B")] = EncScheme::kOpe;
  PlanPtr p = Finish(Select(Encrypt(b.Rel("Hosp"), b.Set("B")),
                            {b.Pv("B", CmpOp::kGt, Value(int64_t{1975}))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(ExecutorTest, RangeOnDetEncryptedColumnFails) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("B")] = EncScheme::kDeterministic;
  PlanPtr p = Finish(Select(Encrypt(b.Rel("Hosp"), b.Set("B")),
                            {b.Pv("B", CmpOp::kGt, Value(int64_t{1975}))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecutorTest, EncryptedEquiJoinViaDet) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("S")] = EncScheme::kDeterministic;
  crypto_.scheme_of[b.A("C")] = EncScheme::kDeterministic;
  PlanPtr p = Finish(Join(Encrypt(b.Rel("Hosp"), b.Set("S")),
                          Encrypt(b.Rel("Ins"), b.Set("C")),
                          {b.Pa("S", CmpOp::kEq, "C")}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 4u);
}

TEST_F(ExecutorTest, HomomorphicAvgMatchesPlaintext) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("P")] = EncScheme::kPaillier;
  PlanPtr p = Finish(Decrypt(
      GroupBy(Encrypt(b.Rel("Ins"), b.Set("P")), {},
              {Aggregate::Make(AggFunc::kAvg, b.A("P"))}),
      b.Set("P")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_NEAR(t->row(0)[0].plain().AsDouble(), 112.5, 1e-3);  // 450/4
}

TEST_F(ExecutorTest, HomomorphicSumGroupedMatchesPlaintext) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("P")] = EncScheme::kPaillier;
  // Group Ins by C (plaintext) and sum encrypted P, then decrypt.
  PlanPtr p = Finish(Decrypt(
      GroupBy(Encrypt(b.Rel("Ins"), b.Set("P")), b.Set("C"),
              {Aggregate::Make(AggFunc::kSum, b.A("P"))}),
      b.Set("P")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 4u);
}

TEST_F(ExecutorTest, LazyHomFoldBitIdenticalToEagerCellPathAcrossThreads) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("P")] = EncScheme::kPaillier;
  // Encrypt P once, then aggregate the same ciphertexts through both fold
  // paths: the contiguous kEnc representation (lazy staged fold) and the
  // kCell fallback (eager per-row fold). Every variant, at every thread
  // count, must serialize to exactly the same bytes.
  PlanPtr enc = Finish(Encrypt(b.Rel("Ins"), b.Set("P")));
  Result<Table> enc_t = ExecutePlan(enc.get(), &ctx_);
  ASSERT_TRUE(enc_t.ok()) << enc_t.status().ToString();
  Table lazy_t = *enc_t;
  int idx = lazy_t.ColIndex(b.A("P"));
  ASSERT_GE(idx, 0);
  ASSERT_EQ(lazy_t.col(static_cast<size_t>(idx)).rep(), ColumnRep::kEnc);
  Table eager_t = *enc_t;
  {
    ColumnData cells(ColumnRep::kCell);
    const ColumnData& src = eager_t.col(static_cast<size_t>(idx));
    cells.Reserve(src.size());
    for (size_t r = 0; r < src.size(); ++r) cells.Append(src.GetCell(r));
    ASSERT_EQ(cells.rep(), ColumnRep::kCell);
    eager_t.SetColumnData(static_cast<size_t>(idx), std::move(cells));
  }
  PlanPtr gb = Finish(GroupBy(b.Rel("Ins"), b.Set("C"),
                              {Aggregate::Make(AggFunc::kSum, b.A("P")),
                               Aggregate::Make(AggFunc::kAvg, b.A("P"))}));
  ctx_.batch_size = 2;  // several batches even over the 4-row table
  ThreadPool pool2(2), pool8(8);
  std::vector<std::string> wires;
  for (const Table* base : {&lazy_t, &eager_t}) {
    for (ThreadPool* pool :
         {static_cast<ThreadPool*>(nullptr), &pool2, &pool8}) {
      ctx_.base_tables[ex_->ins] = base;
      ctx_.pool = pool;
      Result<Table> t = ExecutePlan(gb.get(), &ctx_);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      ASSERT_EQ(t->num_rows(), 4u);
      wires.push_back(t->SerializeColumns());
    }
  }
  for (size_t i = 1; i < wires.size(); ++i) {
    EXPECT_EQ(wires[i], wires[0]) << "variant " << i;
  }
}

TEST_F(ExecutorTest, MinMaxOverOpe) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("B")] = EncScheme::kOpe;
  PlanPtr p = Finish(Decrypt(
      GroupBy(Encrypt(b.Rel("Hosp"), b.Set("B")), {},
              {Aggregate::Make(AggFunc::kMax, b.A("B"))}),
      b.Set("B")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->row(0)[0].plain(), Value(int64_t{1990}));
}

TEST_F(ExecutorTest, SumOverDetFails) {
  PlanBuilder b = ex_->builder();
  crypto_.scheme_of[b.A("P")] = EncScheme::kDeterministic;
  PlanPtr p = Finish(GroupBy(Encrypt(b.Rel("Ins"), b.Set("P")), {},
                             {Aggregate::Make(AggFunc::kSum, b.A("P"))}));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecutorTest, EncryptWithoutKeyFails) {
  PlanBuilder b = ex_->builder();
  crypto_.key_of[b.A("S")] = 42;  // a key nobody holds
  PlanPtr p = Finish(Encrypt(b.Rel("Hosp"), b.Set("S")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UdfDefaultPlaintext) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(Udf(b.Rel("Hosp"), "score", b.Set("S,B"), b.A("S")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->num_columns(), 3u);  // B consumed
}

TEST_F(ExecutorTest, RegisteredUdfIsUsed) {
  PlanBuilder b = ex_->builder();
  ctx_.udfs["double_it"] = [](const std::vector<Cell>& in) -> Result<Cell> {
    return Cell(Value(in[0].plain().AsInt() * 2));
  };
  PlanPtr p = Finish(Udf(b.Rel("Hosp"), "double_it", b.Set("S"), b.A("S")));
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->row(0)[t->ColIndex(b.A("S"))].plain(), Value(int64_t{200}));
}

TEST_F(ExecutorTest, MissingBaseTableFails) {
  Catalog& cat = ex_->catalog;
  ctx_.base_tables.erase(ex_->ins);
  PlanPtr p = Finish(Base(ex_->ins));
  (void)cat;
  Result<Table> t = ExecutePlan(p.get(), &ctx_);
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, TableToStringTruncates) {
  std::string s = hosp_.ToString(2);
  EXPECT_NE(s.find("more rows"), std::string::npos);
  EXPECT_NE(s.find("S | B | D | T"), std::string::npos);
}

TEST_F(ExecutorTest, BatchIndexingInvariants) {
  // A zero-row table has zero batches; Batch never fabricates a range with
  // begin > end (the old silent clamp is now an asserted invariant, and the
  // release-mode degradation is an empty batch).
  Table empty(hosp_.columns());
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.NumBatches(), 0u);
  EXPECT_EQ(empty.NumBatches(0), 0u);
  RowBatch b = empty.Batch(0);
  EXPECT_EQ(b.begin, 0u);
  EXPECT_EQ(b.end, 0u);
  EXPECT_TRUE(b.empty());

  // batch_size == 0 is normalized to 1 everywhere.
  EXPECT_EQ(hosp_.NumBatches(0), hosp_.num_rows());
  RowBatch last = hosp_.Batch(hosp_.num_rows() - 1, 0);
  EXPECT_EQ(last.size(), 1u);
  EXPECT_EQ(last.end, hosp_.num_rows());
}

TEST_F(ExecutorTest, ZeroRowTablesFlowThroughEveryOperator) {
  // Every operator over an empty operand produces a well-formed empty
  // result, at the default batch size and at batch_size == 0.
  Table empty_hosp(hosp_.columns());
  Table empty_ins(ins_.columns());
  ctx_.base_tables[ex_->hosp] = &empty_hosp;
  ctx_.base_tables[ex_->ins] = &empty_ins;
  PlanBuilder b = ex_->builder();
  for (size_t batch_size : {Table::kDefaultBatchSize, size_t{0}}) {
    ctx_.batch_size = batch_size;
    PlanPtr sel = Finish(Select(
        b.Rel("Hosp"), {b.Pv("D", CmpOp::kEq, Value(std::string("stroke")))}));
    Result<Table> t = ExecutePlan(sel.get(), &ctx_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->num_rows(), 0u);
    EXPECT_EQ(t->num_columns(), 4u);

    PlanPtr join = Finish(Join(b.Rel("Hosp"), b.Rel("Ins"),
                               {b.Pa("S", CmpOp::kEq, "C")}));
    t = ExecutePlan(join.get(), &ctx_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->num_rows(), 0u);
    EXPECT_EQ(t->num_columns(), 6u);

    PlanPtr gb = Finish(GroupBy(b.Rel("Hosp"), b.Set("D"),
                                {Aggregate::Make(AggFunc::kMin, b.A("B"))}));
    t = ExecutePlan(gb.get(), &ctx_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->num_rows(), 0u);

    PlanPtr enc = Finish(Encrypt(b.Rel("Hosp"), b.Set("B")));
    t = ExecutePlan(enc.get(), &ctx_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->num_rows(), 0u);
    EXPECT_TRUE(t->columns()[1].encrypted);
  }
}

TEST_F(ExecutorTest, BatchSizeZeroMatchesDefaultOnRealData) {
  // batch_size == 0 (normalized to 1-row batches) must produce the same
  // result as the default batch size on a non-trivial plan.
  PlanBuilder b = ex_->builder();
  auto run = [&](size_t batch_size) {
    ctx_.batch_size = batch_size;
    PlanPtr p = Finish(GroupBy(
        Join(b.Rel("Hosp"), b.Rel("Ins"), {b.Pa("S", CmpOp::kEq, "C")}),
        b.Set("D"), {Aggregate::Make(AggFunc::kSum, b.A("P"))}));
    Result<Table> t = ExecutePlan(p.get(), &ctx_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t->ToString();
  };
  EXPECT_EQ(run(Table::kDefaultBatchSize), run(0));
}

}  // namespace
}  // namespace mpq

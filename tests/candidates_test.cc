// Tests for minimum required views (Def 5.2) and assignment candidates
// (Def 5.3), reproducing the candidate sets of Figs 5/6 and Theorem 5.1.

#include <gtest/gtest.h>

#include "candidates/candidates.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class CandidatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
    auto cp = ComputeCandidates(plan_.get(), *ex_->policy);
    ASSERT_TRUE(cp.ok()) << cp.status().ToString();
    cp_ = std::make_unique<CandidatePlan>(std::move(*cp));
  }

  SubjectSet Subjects(std::initializer_list<SubjectId> ids) {
    SubjectSet out;
    for (SubjectId s : ids) out.Insert(s);
    return out;
  }

  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c) {
      out.Insert(ex_->catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
  std::unique_ptr<CandidatePlan> cp_;
};

TEST_F(CandidatesTest, MinRequiredViewEncryptsAllButNeeded) {
  RelationProfile p;
  p.vp = Set("SDT");
  p.ip = Set("D");
  RelationProfile mv = MinRequiredView(p, Set("D"));
  EXPECT_EQ(mv.vp, Set("D"));
  EXPECT_EQ(mv.ve, Set("ST"));
  EXPECT_EQ(mv.ip, Set("D"));  // implicit untouched
}

TEST_F(CandidatesTest, MinRequiredViewDecryptsNeededEncrypted) {
  RelationProfile p;
  p.vp = Set("T");
  p.ve = Set("P");
  RelationProfile mv = MinRequiredView(p, Set("P"));
  EXPECT_EQ(mv.vp, Set("P"));
  EXPECT_EQ(mv.ve, Set("T"));
}

// Fig 5/6: candidate sets for the running example.
TEST_F(CandidatesTest, SelectionOnDHasAllSixCandidates) {
  EXPECT_EQ(cp_->at(PaperExample::kSelectD).candidates,
            Subjects({ex_->H, ex_->I, ex_->U, ex_->X, ex_->Y, ex_->Z}));
}

TEST_F(CandidatesTest, JoinExcludesOnlyI) {
  // I has non-uniform visibility over the equivalence pair {S,C}.
  EXPECT_EQ(cp_->at(PaperExample::kJoin).candidates,
            Subjects({ex_->H, ex_->U, ex_->X, ex_->Y, ex_->Z}));
}

TEST_F(CandidatesTest, GroupByExcludesOnlyI) {
  EXPECT_EQ(cp_->at(PaperExample::kGroupBy).candidates,
            Subjects({ex_->H, ex_->U, ex_->X, ex_->Y, ex_->Z}));
}

TEST_F(CandidatesTest, HavingNeedsPlaintextAvgOnlyUY) {
  // The final selection needs avg(P) in plaintext: only U and Y qualify.
  EXPECT_EQ(cp_->at(PaperExample::kHaving).candidates,
            Subjects({ex_->U, ex_->Y}));
}

TEST_F(CandidatesTest, LeafCandidatesAreTheOwners) {
  EXPECT_EQ(cp_->at(PaperExample::kHospLeaf).candidates, Subjects({ex_->H}));
  EXPECT_EQ(cp_->at(PaperExample::kInsLeaf).candidates, Subjects({ex_->I}));
}

TEST_F(CandidatesTest, CascadeProfileOfJoinIsFullyEncrypted) {
  const RelationProfile& p = cp_->at(PaperExample::kJoin).cascade_profile;
  EXPECT_TRUE(p.vp.empty());
  EXPECT_EQ(p.ve, Set("SDTCP"));
  EXPECT_EQ(p.ie, Set("D"));
}

TEST_F(CandidatesTest, CascadeProfileOfHavingHasPlaintextP) {
  const RelationProfile& p = cp_->at(PaperExample::kHaving).cascade_profile;
  EXPECT_EQ(p.vp, Set("P"));
  EXPECT_EQ(p.ve, Set("T"));
  EXPECT_TRUE(p.ip.Contains(ex_->catalog.attrs().Find("P")));
}

TEST_F(CandidatesTest, Theorem51MonotonicityHolds) {
  EXPECT_TRUE(CheckCandidateMonotonicity(plan_.get(), *cp_).ok());
}

TEST_F(CandidatesTest, CandidateSetsShrinkUpThePlan) {
  // Going up: σD (6) ⊇ join (5) ⊇ γ (5) ⊇ having (2).
  EXPECT_TRUE(cp_->at(PaperExample::kJoin)
                  .candidates.IsSubsetOf(
                      cp_->at(PaperExample::kSelectD).candidates));
  EXPECT_TRUE(
      cp_->at(PaperExample::kGroupBy)
          .candidates.IsSubsetOf(cp_->at(PaperExample::kJoin).candidates));
  EXPECT_TRUE(
      cp_->at(PaperExample::kHaving)
          .candidates.IsSubsetOf(cp_->at(PaperExample::kGroupBy).candidates));
}

TEST_F(CandidatesTest, EmptyCandidateSetIsAnErrorWhenRequired) {
  // Restrict the policy so nobody can run the final having selection in
  // plaintext: drop Y's plaintext P by rebuilding a tighter policy.
  Policy tight(&ex_->catalog, &ex_->subjects);
  AttrSet hosp_all = ex_->catalog.Get(ex_->hosp).schema.Attrs();
  AttrSet ins_all = ex_->catalog.Get(ex_->ins).schema.Attrs();
  ASSERT_TRUE(tight.Grant(ex_->hosp, ex_->H, hosp_all, {}).ok());
  ASSERT_TRUE(tight.Grant(ex_->ins, ex_->I, ins_all, {}).ok());
  // Nobody else sees anything: internal operations have no candidates.
  Result<CandidatePlan> r = ComputeCandidates(plan_.get(), tight);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnauthorized);

  Result<CandidatePlan> relaxed =
      ComputeCandidates(plan_.get(), tight, /*require_nonempty=*/false);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed->at(PaperExample::kJoin).candidates.empty());
}

TEST_F(CandidatesTest, PlaintextNeedWidensMinViewAndShrinksCandidates) {
  // Force the join to require S,C in plaintext: X (encrypted-only over S,C)
  // drops out.
  PlanPtr plan = ex_->BuildQueryPlan();
  PlanNode* join = FindNode(plan.get(), PaperExample::kJoin);
  join->needs_plaintext = Set("SC");
  auto cp = ComputeCandidates(plan.get(), *ex_->policy);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_FALSE(cp->at(PaperExample::kJoin).candidates.Contains(ex_->X));
  // Z sees S and C in plaintext and stays.
  EXPECT_TRUE(cp->at(PaperExample::kJoin).candidates.Contains(ex_->Z));
}

}  // namespace
}  // namespace mpq

// Tests for query-plan keys (Def 6.1): clustering by root equivalence sets
// and holder computation, matching the paper's kSC/kP example.

#include <gtest/gtest.h>

#include <set>

#include "extend/keys.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class KeysTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
  }

  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c) {
      out.Insert(ex_->catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  }

  const KeyGroup* FindGroup(const PlanKeys& keys, const AttrSet& attrs) {
    for (const KeyGroup& g : keys.groups) {
      if (g.attrs == attrs) return &g;
    }
    return nullptr;
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
};

TEST_F(KeysTest, Fig7aKeysAreKscAndKp) {
  Assignment lambda{{PaperExample::kProject, ex_->H},
                    {PaperExample::kSelectD, ex_->H},
                    {PaperExample::kJoin, ex_->X},
                    {PaperExample::kGroupBy, ex_->X},
                    {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), lambda, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  ASSERT_EQ(keys.groups.size(), 2u);

  // kSC distributed to H and I (who encrypt S and C).
  const KeyGroup* ksc = FindGroup(keys, Set("SC"));
  ASSERT_NE(ksc, nullptr);
  EXPECT_TRUE(ksc->holders.Contains(ex_->H));
  EXPECT_TRUE(ksc->holders.Contains(ex_->I));
  EXPECT_FALSE(ksc->holders.Contains(ex_->X));  // X never enc/decrypts

  // kP distributed to I (encrypts) and Y (decrypts).
  const KeyGroup* kp = FindGroup(keys, Set("P"));
  ASSERT_NE(kp, nullptr);
  EXPECT_TRUE(kp->holders.Contains(ex_->I));
  EXPECT_TRUE(kp->holders.Contains(ex_->Y));
  EXPECT_FALSE(kp->holders.Contains(ex_->H));
}

TEST_F(KeysTest, Fig7bKeysAreKdAndKp) {
  Assignment lambda{{PaperExample::kProject, ex_->H},
                    {PaperExample::kSelectD, ex_->H},
                    {PaperExample::kJoin, ex_->Z},
                    {PaperExample::kGroupBy, ex_->Z},
                    {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), lambda, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  ASSERT_EQ(keys.groups.size(), 2u);

  const KeyGroup* kd = FindGroup(keys, Set("D"));
  ASSERT_NE(kd, nullptr);
  EXPECT_TRUE(kd->holders.Contains(ex_->H));
  EXPECT_EQ(kd->holders.size(), 1u);  // only H touches D

  const KeyGroup* kp = FindGroup(keys, Set("P"));
  ASSERT_NE(kp, nullptr);
  EXPECT_TRUE(kp->holders.Contains(ex_->I));
  EXPECT_TRUE(kp->holders.Contains(ex_->Y));
}

TEST_F(KeysTest, GroupOfFindsCluster) {
  Assignment lambda{{PaperExample::kProject, ex_->H},
                    {PaperExample::kSelectD, ex_->H},
                    {PaperExample::kJoin, ex_->X},
                    {PaperExample::kGroupBy, ex_->X},
                    {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), lambda, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  AttrId s = ex_->catalog.attrs().Find("S");
  AttrId c = ex_->catalog.attrs().Find("C");
  ASSERT_NE(keys.GroupOf(s), nullptr);
  EXPECT_EQ(keys.GroupOf(s), keys.GroupOf(c));  // equivalent → same key
  AttrId b = ex_->catalog.attrs().Find("B");
  EXPECT_EQ(keys.GroupOf(b), nullptr);  // never encrypted
}

TEST_F(KeysTest, KeyIdsAreStableAndUnique) {
  Assignment lambda{{PaperExample::kProject, ex_->H},
                    {PaperExample::kSelectD, ex_->H},
                    {PaperExample::kJoin, ex_->X},
                    {PaperExample::kGroupBy, ex_->X},
                    {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), lambda, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  PlanKeys a = DeriveQueryPlanKeys(*ext);
  PlanKeys b = DeriveQueryPlanKeys(*ext);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  std::set<uint64_t> ids;
  for (size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].key_id, b.groups[i].key_id);
    EXPECT_EQ(a.groups[i].attrs, b.groups[i].attrs);
    ids.insert(a.groups[i].key_id);
  }
  EXPECT_EQ(ids.size(), a.groups.size());
}

TEST_F(KeysTest, ToStringListsKeysAndHolders) {
  Assignment lambda{{PaperExample::kProject, ex_->H},
                    {PaperExample::kSelectD, ex_->H},
                    {PaperExample::kJoin, ex_->X},
                    {PaperExample::kGroupBy, ex_->X},
                    {PaperExample::kHaving, ex_->Y}};
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), lambda, *ex_->policy, ex_->U);
  ASSERT_TRUE(ext.ok());
  PlanKeys keys = DeriveQueryPlanKeys(*ext);
  std::string s = keys.ToString(ex_->catalog, ex_->subjects);
  EXPECT_NE(s.find("kSC"), std::string::npos);
  EXPECT_NE(s.find("kP"), std::string::npos);
}

}  // namespace
}  // namespace mpq

// Shared fixture: the paper's running example.
//
// Hospital H stores Hosp(S,B,D,T); insurance company I stores Ins(C,P); user
// U queries; providers X, Y, Z offer computation. Authorizations follow
// Fig 1(b) / Fig 4, the query plan follows Fig 1(a):
//
//   select T, avg(P) from Hosp join Ins on S=C
//   where D='stroke' group by T having avg(P)>100

#ifndef MPQ_TESTS_PAPER_EXAMPLE_H_
#define MPQ_TESTS_PAPER_EXAMPLE_H_

#include <memory>

#include "algebra/plan_builder.h"
#include "assign/schemes.h"
#include "authz/policy.h"
#include "exec/executor.h"
#include "profile/propagate.h"

namespace mpq::testing {

struct PaperExample {
  Catalog catalog;
  SubjectRegistry subjects;
  std::unique_ptr<Policy> policy;
  SubjectId H, I, U, X, Y, Z;
  RelId hosp, ins;

  PlanBuilder builder() const { return PlanBuilder(&catalog); }

  /// The Fig 1(a) plan with needs_plaintext derived (final having selection
  /// requires plaintext avg(P)) and profiles annotated.
  PlanPtr BuildQueryPlan() const {
    PlanBuilder b = builder();
    PlanPtr p = Project(b.Rel("Hosp"), b.Set("S,D,T"));
    p = Select(std::move(p),
               {b.Pv("D", CmpOp::kEq, Value(std::string("stroke")))});
    p = Join(std::move(p), b.Rel("Ins"), {b.Pa("S", CmpOp::kEq, "C")});
    p = GroupBy(std::move(p), b.Set("T"),
                {Aggregate::Make(AggFunc::kAvg, b.A("P"))});
    p = Select(std::move(p), {b.Pv("P", CmpOp::kGt, Value(100.0))});
    PlanPtr plan = std::move(FinishPlan(std::move(p), catalog)).value();
    Status st = DerivePlaintextNeeds(plan.get(), catalog, SchemeCaps{});
    (void)st;
    st = AnnotatePlan(plan.get(), catalog);
    (void)st;
    return plan;
  }

  /// Fig 1(a) node ids in the built plan (pre-order):
  /// 0 σ_having, 1 γ, 2 ⋈, 3 σ_D, 4 π, 5 Hosp, 6 Ins.
  static constexpr int kHaving = 0;
  static constexpr int kGroupBy = 1;
  static constexpr int kJoin = 2;
  static constexpr int kSelectD = 3;
  static constexpr int kProject = 4;
  static constexpr int kHospLeaf = 5;
  static constexpr int kInsLeaf = 6;

  /// Sample data: four patients (two with stroke), matching insurance rows.
  Table HospData() const {
    Table t = MakeBaseTable(catalog.Get(hosp));
    auto I64 = [](int64_t v) { return Cell(Value(v)); };
    auto Str = [](const char* s) { return Cell(Value(std::string(s))); };
    t.AddRow({I64(100), I64(1970), Str("stroke"), Str("tpa")});
    t.AddRow({I64(101), I64(1985), Str("flu"), Str("rest")});
    t.AddRow({I64(102), I64(1960), Str("stroke"), Str("tpa")});
    t.AddRow({I64(103), I64(1990), Str("stroke"), Str("surgery")});
    return t;
  }

  Table InsData() const {
    Table t = MakeBaseTable(catalog.Get(ins));
    auto I64 = [](int64_t v) { return Cell(Value(v)); };
    auto Dbl = [](double v) { return Cell(Value(v)); };
    t.AddRow({I64(100), Dbl(120.0)});
    t.AddRow({I64(101), Dbl(80.0)});
    t.AddRow({I64(102), Dbl(200.0)});
    t.AddRow({I64(103), Dbl(50.0)});
    return t;
  }
};

/// Heap-allocates the example so that internal pointers (Policy → catalog)
/// stay valid regardless of how the caller stores it.
inline std::unique_ptr<PaperExample> MakePaperExample() {
  auto ex_ptr = std::make_unique<PaperExample>();
  PaperExample& ex = *ex_ptr;
  ex.H = *ex.subjects.Register("H", SubjectKind::kAuthority);
  ex.I = *ex.subjects.Register("I", SubjectKind::kAuthority);
  ex.U = *ex.subjects.Register("U", SubjectKind::kUser);
  ex.X = *ex.subjects.Register("X", SubjectKind::kProvider);
  ex.Y = *ex.subjects.Register("Y", SubjectKind::kProvider);
  ex.Z = *ex.subjects.Register("Z", SubjectKind::kProvider);

  using C = std::pair<std::string, DataType>;
  ex.hosp = *ex.catalog.AddRelation(
      "Hosp",
      {C{"S", DataType::kInt64}, C{"B", DataType::kInt64},
       C{"D", DataType::kString}, C{"T", DataType::kString}},
      ex.H, 1000);
  ex.ins = *ex.catalog.AddRelation(
      "Ins", {C{"C", DataType::kInt64}, C{"P", DataType::kDouble}}, ex.I, 800);

  ex.policy = std::make_unique<Policy>(&ex.catalog, &ex.subjects);
  Policy& p = *ex.policy;
  auto set = [&](const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c != '\0'; ++c) {
      out.Insert(ex.catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  };
  // Fig 1(b): authorizations on Hosp.
  (void)p.Grant(ex.hosp, ex.H, set("SBDT"), {});
  (void)p.Grant(ex.hosp, ex.I, set("B"), set("SDT"));
  (void)p.Grant(ex.hosp, ex.U, set("SDT"), {});
  (void)p.Grant(ex.hosp, ex.X, set("DT"), set("S"));
  (void)p.Grant(ex.hosp, ex.Y, set("BDT"), set("S"));
  (void)p.Grant(ex.hosp, ex.Z, set("ST"), set("D"));
  (void)p.GrantAny(ex.hosp, set("DT"), {});
  // Authorizations on Ins.
  (void)p.Grant(ex.ins, ex.H, set("C"), set("P"));
  (void)p.Grant(ex.ins, ex.I, set("CP"), {});
  (void)p.Grant(ex.ins, ex.U, set("CP"), {});
  (void)p.Grant(ex.ins, ex.X, {}, set("CP"));
  (void)p.Grant(ex.ins, ex.Y, set("P"), set("C"));
  (void)p.Grant(ex.ins, ex.Z, set("C"), set("P"));
  (void)p.GrantAny(ex.ins, {}, set("P"));
  return ex_ptr;
}

}  // namespace mpq::testing

#endif  // MPQ_TESTS_PAPER_EXAMPLE_H_

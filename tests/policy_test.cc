// Tests for the authorization model: Def 2.1 rule validation, overall views
// (Fig 4), the Def 4.1 authorized-relation check (Example 4.1) and the
// Def 4.2 assignee check.

#include <gtest/gtest.h>

#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakePaperExample(); }
  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c) {
      out.Insert(ex_->catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  }
  std::unique_ptr<PaperExample> ex_;
};

TEST_F(PolicyTest, OverallViewsMatchFig4) {
  const Policy& p = *ex_->policy;
  EXPECT_EQ(p.PlainView(ex_->H), Set("SBDTC"));
  EXPECT_EQ(p.EncView(ex_->H), Set("P"));
  EXPECT_EQ(p.PlainView(ex_->I), Set("BCP"));
  EXPECT_EQ(p.EncView(ex_->I), Set("SDT"));
  EXPECT_EQ(p.PlainView(ex_->U), Set("SDTCP"));
  EXPECT_TRUE(p.EncView(ex_->U).empty());
  EXPECT_EQ(p.PlainView(ex_->X), Set("DT"));
  EXPECT_EQ(p.EncView(ex_->X), Set("SCP"));
  EXPECT_EQ(p.PlainView(ex_->Y), Set("BDTP"));
  EXPECT_EQ(p.EncView(ex_->Y), Set("SC"));
  EXPECT_EQ(p.PlainView(ex_->Z), Set("STC"));
  EXPECT_EQ(p.EncView(ex_->Z), Set("DP"));
}

TEST_F(PolicyTest, GrantRejectsOverlappingPlainAndEnc) {
  Policy p(&ex_->catalog, &ex_->subjects);
  Status st = p.Grant(ex_->hosp, ex_->X, Set("SD"), Set("DB"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("P ∩ E"), std::string::npos);
}

TEST_F(PolicyTest, GrantRejectsForeignAttributes) {
  Policy p(&ex_->catalog, &ex_->subjects);
  // C belongs to Ins, not Hosp.
  Status st = p.Grant(ex_->hosp, ex_->X, Set("SC"), {});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(PolicyTest, AtMostOneAuthorizationPerRelationAndSubject) {
  Policy p(&ex_->catalog, &ex_->subjects);
  ASSERT_TRUE(p.Grant(ex_->hosp, ex_->X, Set("S"), {}).ok());
  EXPECT_EQ(p.Grant(ex_->hosp, ex_->X, Set("B"), {}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(p.GrantAny(ex_->hosp, Set("D"), {}).ok());
  EXPECT_EQ(p.GrantAny(ex_->hosp, Set("T"), {}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PolicyTest, AnyDefaultAppliesOnlyWithoutExplicitRule) {
  Policy p(&ex_->catalog, &ex_->subjects);
  ASSERT_TRUE(p.Grant(ex_->hosp, ex_->X, Set("S"), {}).ok());
  ASSERT_TRUE(p.GrantAny(ex_->hosp, Set("DT"), {}).ok());
  // X has an explicit rule: any does not apply.
  EXPECT_EQ(p.PlainView(ex_->X), Set("S"));
  // Y has no explicit rule: any applies.
  EXPECT_EQ(p.PlainView(ex_->Y), Set("DT"));
}

TEST_F(PolicyTest, ClosedPolicyDeniesByDefault) {
  Policy p(&ex_->catalog, &ex_->subjects);
  RelationProfile prof =
      RelationProfile::ForBase(ex_->catalog.Get(ex_->hosp).schema.Attrs());
  EXPECT_FALSE(p.IsAuthorized(ex_->X, prof));
}

// Example 4.1: relation R with profile [P, BSC, -, -, {SC}].
TEST_F(PolicyTest, Example41) {
  RelationProfile prof;
  prof.vp = Set("P");
  prof.ve = Set("BSC");
  prof.eq.UnionAll(Set("SC"));

  const Policy& p = *ex_->policy;
  // Y is authorized.
  EXPECT_TRUE(p.IsAuthorized(ex_->Y, prof));
  // H fails condition 1 (attribute P not plaintext for H).
  Status h = p.CheckAuthorized(ex_->H, prof);
  EXPECT_EQ(h.code(), StatusCode::kUnauthorized);
  EXPECT_NE(h.message().find("condition 1"), std::string::npos);
  // U fails condition 2 (attribute B not even encrypted for U).
  Status u = p.CheckAuthorized(ex_->U, prof);
  EXPECT_EQ(u.code(), StatusCode::kUnauthorized);
  EXPECT_NE(u.message().find("condition 2"), std::string::npos);
  // I fails condition 3 (S and C with non-uniform visibility).
  Status i = p.CheckAuthorized(ex_->I, prof);
  EXPECT_EQ(i.code(), StatusCode::kUnauthorized);
  EXPECT_NE(i.message().find("condition 3"), std::string::npos);
}

TEST_F(PolicyTest, PlaintextGrantSatisfiesEncryptedNeed) {
  // Condition 2 accepts P_S ∪ E_S: U sees everything plaintext, so a fully
  // encrypted relation over SDTCP is fine for U.
  RelationProfile prof;
  prof.ve = Set("SDTCP");
  EXPECT_TRUE(ex_->policy->IsAuthorized(ex_->U, prof));
}

TEST_F(PolicyTest, UniformVisibilityChecksImplicitMembers) {
  // Equivalence members are checked even when not in the schema.
  RelationProfile prof;
  prof.vp = Set("T");
  prof.eq.UnionAll(Set("SC"));
  // Z: S,C both plaintext → fine.
  EXPECT_TRUE(ex_->policy->IsAuthorized(ex_->Z, prof));
  // I: C plaintext, S encrypted → condition 3 violation.
  EXPECT_FALSE(ex_->policy->IsAuthorized(ex_->I, prof));
}

TEST_F(PolicyTest, CheckAssigneeRequiresOperandsAndResult) {
  RelationProfile hosp_prof =
      RelationProfile::ForBase(ex_->catalog.Get(ex_->hosp).schema.Attrs());
  RelationProfile result;
  result.vp = Set("SDT");
  // U is authorized for the SDT result but not for full plaintext Hosp
  // (B missing), so assignment fails on the operand.
  EXPECT_FALSE(
      ex_->policy->CheckAssignee(ex_->U, result, {&hosp_prof}).ok());
  // H is fine for both.
  EXPECT_TRUE(ex_->policy->CheckAssignee(ex_->H, result, {&hosp_prof}).ok());
}

TEST_F(PolicyTest, EffectiveResolvesExplicitThenAnyThenNothing) {
  const Policy& p = *ex_->policy;
  auto x = p.Effective(ex_->hosp, ex_->X);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->plain, Set("DT"));
  // A subject with no explicit grant gets the any-rule; register a fresh one.
  SubjectId w = *ex_->subjects.Register("W", SubjectKind::kProvider);
  auto any = p.Effective(ex_->hosp, w);
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(any->is_any);
  EXPECT_EQ(any->plain, Set("DT"));
}

TEST_F(PolicyTest, AllRulesEnumerates) {
  EXPECT_EQ(ex_->policy->AllRules().size(), 14u);  // 12 explicit + 2 any
}

TEST_F(PolicyTest, AuthorizationToString) {
  auto rules = ex_->policy->AllRules();
  ASSERT_FALSE(rules.empty());
  std::string s = rules[0].ToString(ex_->catalog, ex_->subjects);
  EXPECT_NE(s.find("->"), std::string::npos);
  EXPECT_NE(s.find(" on "), std::string::npos);
}

}  // namespace
}  // namespace mpq

// Tests for compressed column segments (storage/segment.h) and the
// out-of-core execution paths built on them: encode/decode round-trip
// property tests over random tables, corruption rejection, zone-map
// pruning correctness (a skipped segment provably holds no qualifying
// row), and spill-to-disk join/group-by differentials — bit-identical to
// the in-memory engine and the row-path oracle at 1/2/8 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/keyring.h"
#include "exec/executor.h"
#include "paper_example.h"
#include "storage/segment.h"
#include "testing/random_plan.h"
#include "testing/reference_exec.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

Cell I(int64_t v) { return Cell(Value(v)); }
Cell D(double v) { return Cell(Value(v)); }
Cell S(std::string v) { return Cell(Value(std::move(v))); }

// ------------------------------------------------------- random tables ---

/// A random table drawing every column from a different encoding regime:
/// RLE-friendly and wide int64, doubles (with signed zeros and NaN),
/// dictionary-friendly and all-distinct strings, ciphertexts under every
/// scheme, and heterogeneous cell columns — each with a random null rate.
Table RandomTable(uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  const size_t num_cols = 1 + rng.Uniform(5);
  const size_t rows = rng.Uniform(401);
  KeyMaterial km = MakeKeyMaterial(7, 3);

  std::vector<ExecColumn> cols(num_cols);
  std::vector<int> kind(num_cols);
  std::vector<double> null_p(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    kind[c] = static_cast<int>(rng.Uniform(7));
    null_p[c] = std::vector<double>{0.0, 0.1, 0.9}[rng.Uniform(3)];
    cols[c].attr = static_cast<AttrId>(c + 1);
    cols[c].name = "c" + std::to_string(c);
    switch (kind[c]) {
      case 0:  // constant-ish int64 (RLE)
      case 1:  // wide int64 (frame-of-reference)
        cols[c].type = DataType::kInt64;
        break;
      case 2:  // double
        cols[c].type = DataType::kDouble;
        break;
      case 3:  // repetitive string (dictionary)
      case 4:  // distinct string (plain)
        cols[c].type = DataType::kString;
        break;
      case 5:  // ciphertexts
        cols[c].type = DataType::kInt64;
        cols[c].encrypted = true;
        cols[c].scheme = static_cast<EncScheme>(rng.Uniform(4));
        break;
      default:  // heterogeneous cells
        break;
    }
  }
  Table t(std::move(cols));
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Cell> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      if (rng.Chance(null_p[c])) {
        row.push_back(Cell(Value::Null()));
        continue;
      }
      switch (kind[c]) {
        case 0:
          row.push_back(I(static_cast<int64_t>(rng.Uniform(3))));
          break;
        case 1:
          row.push_back(I(static_cast<int64_t>(rng.Uniform(1u << 20)) -
                          500000 + 1000000000ll));
          break;
        case 2: {
          uint64_t pick = rng.Uniform(20);
          double v = pick == 0   ? 0.0
                     : pick == 1 ? -0.0
                     : pick == 2 ? std::nan("")
                                 : rng.NextDouble() * 2000 - 1000;
          row.push_back(D(v));
          break;
        }
        case 3:
          row.push_back(S("mode-" + std::to_string(rng.Uniform(4))));
          break;
        case 4:
          row.push_back(S("u" + std::to_string(r) + "-" +
                          std::to_string(rng.Next() % 100000)));
          break;
        case 5: {
          const ExecColumn& m = t.columns()[c];
          row.push_back(Cell(*EncryptValue(
              Value(static_cast<int64_t>(rng.Uniform(100))), m.scheme, 3, km,
              r + 1)));
          break;
        }
        default: {
          uint64_t pick = rng.Uniform(3);
          if (pick == 0) {
            row.push_back(I(static_cast<int64_t>(rng.Uniform(50))));
          } else if (pick == 1) {
            row.push_back(S("m" + std::to_string(rng.Uniform(6))));
          } else {
            row.push_back(D(rng.NextDouble()));
          }
          break;
        }
      }
    }
    t.AddRow(std::move(row));
  }
  return t;
}

// ---------------------------------------------------------- round-trip ---

TEST(SegmentTest, RandomTablesRoundTripBitIdentically) {
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Table t = RandomTable(seed);
    Result<std::string> enc = EncodeSegment(t);
    ASSERT_TRUE(enc.ok()) << "seed " << seed << ": " << enc.status().ToString();
    // Deterministic: same table, same bytes.
    ASSERT_EQ(*enc, *EncodeSegment(t)) << "seed " << seed;

    Result<SegmentReader> r = SegmentReader::Open(*enc);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    EXPECT_EQ(r->num_rows(), t.num_rows()) << "seed " << seed;
    EXPECT_EQ(r->num_columns(), t.num_columns()) << "seed " << seed;

    Result<Table> back = r->Decode();
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    // Bit-identical: the wire serialization (covering reps, values, null
    // masks, and metadata) must match exactly — NaN and -0.0 included.
    ASSERT_EQ(back->SerializeColumns(), t.SerializeColumns())
        << "seed " << seed;
  }
}

TEST(SegmentTest, ZoneMapsMatchColumnContents) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Table t = RandomTable(seed);
    Result<SegmentReader> r = SegmentReader::Open(*EncodeSegment(t));
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const SegmentZone& z = r->zone(c);
      EXPECT_EQ(z.num_rows, t.num_rows());
      // A row is null when the mask says so or (kCell rep) the cell holds
      // a plain NULL value.
      auto row_is_null = [&](size_t row) {
        if (t.col(c).IsNull(row)) return true;
        Cell cell = t.col(c).GetCell(row);
        return cell.is_plain() && cell.plain().is_null();
      };
      uint64_t nulls = 0;
      for (size_t row = 0; row < t.num_rows(); ++row) {
        if (row_is_null(row)) nulls++;
      }
      EXPECT_EQ(z.null_count, nulls) << "seed " << seed << " col " << c;
      if (!z.has_range) continue;
      // Ranges only appear on unencrypted typed columns and must bound
      // every non-null value.
      EXPECT_FALSE(t.columns()[c].encrypted);
      for (size_t row = 0; row < t.num_rows(); ++row) {
        if (row_is_null(row)) continue;
        Value v = t.col(c).GetValue(row);
        EXPECT_TRUE(EvalCmp(CmpOp::kGe, v, z.min))
            << "seed " << seed << " col " << c << " row " << row;
        EXPECT_TRUE(EvalCmp(CmpOp::kLe, v, z.max))
            << "seed " << seed << " col " << c << " row " << row;
      }
    }
  }
}

TEST(SegmentTest, EmptyAndZeroColumnTablesSurvive) {
  std::vector<ExecColumn> cols(2);
  cols[0].attr = 1;
  cols[0].name = "k";
  cols[0].type = DataType::kInt64;
  cols[1].attr = 2;
  cols[1].name = "s";
  cols[1].type = DataType::kString;
  Table empty(cols);
  Result<SegmentReader> r = SegmentReader::Open(*EncodeSegment(empty));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(r->Decode()->SerializeColumns(), empty.SerializeColumns());

  Table colless;
  colless.AddRow({});
  colless.AddRow({});
  Result<SegmentReader> r2 = SegmentReader::Open(*EncodeSegment(colless));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_rows(), 2u);
  EXPECT_EQ(r2->Decode()->SerializeColumns(), colless.SerializeColumns());
}

TEST(SegmentTest, SegmentedTableSlicesAndConcatenatesLosslessly) {
  Table t = RandomTable(42);
  for (size_t rows_per : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    Result<SegmentedTable> st = SegmentedTable::FromTable(t, rows_per);
    ASSERT_TRUE(st.ok()) << "rows_per " << rows_per;
    EXPECT_EQ(st->total_rows(), t.num_rows());
    EXPECT_GE(st->num_segments(), 1u);
    if (rows_per == 1 && t.num_rows() > 1) {
      EXPECT_EQ(st->num_segments(), t.num_rows());
    }
    Result<Table> back = st->Decode();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->SerializeColumns(), t.SerializeColumns())
        << "rows_per " << rows_per;
    Result<const Table*> memo = st->Materialize();
    ASSERT_TRUE(memo.ok());
    EXPECT_EQ(*memo, *st->Materialize());  // shared decode
    EXPECT_GT(st->encoded_bytes(), 0u);
  }
}

// ---------------------------------------------------------- corruption ---

TEST(SegmentTest, MutatedFramesAreRejectedNeverCrash) {
  const std::string wire = *EncodeSegment(RandomTable(7));
  ASSERT_TRUE(SegmentReader::Open(wire).ok());
  uint64_t rng = 0xdecafbadf00d1234ull;
  auto next = [&rng] { return rng = SplitMix64(rng); };
  for (int iter = 0; iter < 10000; ++iter) {
    std::string mut = wire;
    switch (next() % 4) {
      case 0:
        mut.resize(next() % (wire.size() + 1));
        break;
      case 1: {
        size_t flips = 1 + next() % 8;
        for (size_t f = 0; f < flips && !mut.empty(); ++f) {
          mut[next() % mut.size()] ^= static_cast<char>(1u << (next() % 8));
        }
        break;
      }
      case 2: {
        size_t smashes = 1 + next() % 9;
        for (size_t s = 0; s < smashes && !mut.empty(); ++s) {
          mut[next() % mut.size()] = static_cast<char>(next() % 256);
        }
        break;
      }
      default:
        mut.resize(next() % (wire.size() + 1));
        for (size_t e = next() % 32; e > 0; --e) {
          mut.push_back(static_cast<char>(next() % 256));
        }
        break;
    }
    Result<SegmentReader> r = SegmentReader::Open(mut);
    if (!r.ok()) continue;
    // The trailing checksum makes accidental acceptance essentially
    // impossible for anything but an untouched frame; whatever is
    // accepted must still decode cleanly.
    Result<Table> back = r->Decode();
    ASSERT_TRUE(back.ok()) << "accepted frame failed to decode";
  }
}

// ------------------------------------------------------- zone-map scans ---

class SegmentExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    hosp_ = BigHosp(4000);
    ins_ = BigIns(3000);
  }

  /// Hosp-shaped (S int, B int, D string, T string) with S ascending — so
  /// row-range segments partition the key space and range predicates on S
  /// can prune — B noisy with nulls, D dictionary-friendly.
  Table BigHosp(size_t rows) {
    Rng rng(99);
    Table t = MakeBaseTable(ex_->catalog.Get(ex_->hosp));
    for (size_t r = 0; r < rows; ++r) {
      Cell b = rng.Chance(0.05)
                   ? Cell(Value::Null())
                   : I(1900 + static_cast<int64_t>(rng.Uniform(120)));
      t.AddRow({I(static_cast<int64_t>(r)), b,
                S("d" + std::to_string(rng.Uniform(6))),
                S("t" + std::to_string(rng.Uniform(3)))});
    }
    return t;
  }

  /// Ins-shaped (C int, P double) with duplicate keys overlapping BigHosp's
  /// low key range.
  Table BigIns(size_t rows) {
    Rng rng(177);
    Table t = MakeBaseTable(ex_->catalog.Get(ex_->ins));
    for (size_t r = 0; r < rows; ++r) {
      t.AddRow({I(static_cast<int64_t>(rng.Uniform(700))),
                D(rng.NextDouble() * 100)});
    }
    return t;
  }

  PlanPtr Finish(PlanPtr p) {
    return std::move(FinishPlan(std::move(p), ex_->catalog)).value();
  }

  /// Executes `p` with both relations materialized in memory.
  Result<Table> RunInMemory(const PlanNode* p, ThreadPool* pool,
                            uint64_t budget = 0, ExecContext* out = nullptr) {
    ExecContext local;
    ExecContext* ctx = out != nullptr ? out : &local;
    ctx->catalog = &ex_->catalog;
    ctx->base_tables[ex_->hosp] = &hosp_;
    ctx->base_tables[ex_->ins] = &ins_;
    ctx->pool = pool;
    ctx->memory_budget = budget;
    return ExecutePlan(p, ctx);
  }

  std::unique_ptr<PaperExample> ex_;
  Table hosp_, ins_;
};

TEST_F(SegmentExecTest, ZoneMapScanSkipsSegmentsAndMatchesFullScan) {
  Result<SegmentedTable> st = SegmentedTable::FromTable(hosp_, 256);
  ASSERT_TRUE(st.ok());

  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Select(b.Rel("Hosp"), {b.Pv("S", CmpOp::kLt, Value(int64_t{300}))}));

  Result<Table> full = RunInMemory(p.get(), nullptr);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  ExecContext ctx;
  ctx.catalog = &ex_->catalog;
  ctx.base_tables[ex_->ins] = &ins_;
  ctx.segment_tables[ex_->hosp] = &*st;
  Result<Table> pruned = ExecutePlan(p.get(), &ctx);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();

  EXPECT_EQ(CanonicalRows(*pruned), CanonicalRows(*full));
  // S ascending over 4000 rows at 256 rows/segment: only the first two
  // segments can hold S < 300.
  EXPECT_EQ(ctx.segments_scanned.load(), st->num_segments());
  EXPECT_GE(ctx.segments_skipped.load(), st->num_segments() - 2);

  // Every skipped segment provably holds no qualifying row.
  for (size_t s = 0; s < st->num_segments(); ++s) {
    const SegmentReader& seg = st->segment(s);
    size_t s_col = 0;  // S is column 0
    if (ZoneMayMatch(seg.zone(s_col), CmpOp::kLt, Value(int64_t{300}))) {
      continue;
    }
    Result<Table> dec = seg.Decode();
    ASSERT_TRUE(dec.ok());
    for (size_t r = 0; r < dec->num_rows(); ++r) {
      Value v = dec->col(s_col).IsNull(r) ? Value::Null()
                                          : dec->col(s_col).GetValue(r);
      EXPECT_FALSE(EvalCmp(CmpOp::kLt, v, Value(int64_t{300})))
          << "segment " << s << " row " << r
          << " was skipped but satisfies the predicate";
    }
  }
}

TEST_F(SegmentExecTest, FullyPrunedScanYieldsTheEmptyResultShape) {
  Result<SegmentedTable> st = SegmentedTable::FromTable(hosp_, 512);
  ASSERT_TRUE(st.ok());
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Select(b.Rel("Hosp"), {b.Pv("S", CmpOp::kGt, Value(int64_t{999999}))}));

  Result<Table> full = RunInMemory(p.get(), nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->num_rows(), 0u);

  ExecContext ctx;
  ctx.catalog = &ex_->catalog;
  ctx.segment_tables[ex_->hosp] = &*st;
  Result<Table> pruned = ExecutePlan(p.get(), &ctx);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned->SerializeColumns(), full->SerializeColumns());
  EXPECT_EQ(ctx.segments_skipped.load(), st->num_segments());
}

TEST_F(SegmentExecTest, NullMatchingPredicatesAreNeverPrunedWrongly) {
  // B has NULLs; under the engine's semantics NULL < any number, so kLt
  // predicates match NULL rows and zone pruning must keep such segments.
  Result<SegmentedTable> st = SegmentedTable::FromTable(hosp_, 128);
  ASSERT_TRUE(st.ok());
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Select(b.Rel("Hosp"), {b.Pv("B", CmpOp::kLt, Value(int64_t{1901}))}));
  Result<Table> full = RunInMemory(p.get(), nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->num_rows(), 0u);  // NULL rows qualify

  ExecContext ctx;
  ctx.catalog = &ex_->catalog;
  ctx.segment_tables[ex_->hosp] = &*st;
  Result<Table> pruned = ExecutePlan(p.get(), &ctx);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(CanonicalRows(*pruned), CanonicalRows(*full));
}

// ------------------------------------------------------------- spilling ---

TEST_F(SegmentExecTest, SpilledJoinIsBitIdenticalAtEveryThreadCount) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Finish(
      Join(b.Rel("Hosp"), b.Rel("Ins"), {b.Pa("S", CmpOp::kEq, "C")}));

  Result<Table> in_memory = RunInMemory(p.get(), nullptr);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  ASSERT_GT(in_memory->num_rows(), 0u);
  const std::string want = in_memory->SerializeColumns();

  // Row-path oracle agreement (order-insensitive).
  ReferenceExecutor oracle(&ex_->catalog);
  oracle.LoadTable(ex_->hosp, &hosp_);
  oracle.LoadTable(ex_->ins, &ins_);
  Result<Table> ref = oracle.Run(p.get());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(CanonicalRows(*in_memory), CanonicalRows(*ref));

  ThreadPool two(2), eight(8);
  for (ThreadPool* pool :
       {static_cast<ThreadPool*>(nullptr), &two, &eight}) {
    // ~110 KB of inputs against a 4 KB budget: first-generation partitions
    // (~1/8 each) still exceed it, forcing a second recursive generation.
    ExecContext ctx;
    Result<Table> spilled = RunInMemory(p.get(), pool, 4096, &ctx);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_EQ(spilled->SerializeColumns(), want)
        << "spilled join diverges at "
        << (pool == nullptr ? 1 : pool->size()) << " threads";
    EXPECT_GT(ctx.spill_partitions.load(), 0u);
    EXPECT_GT(ctx.spill_bytes.load(), 0u);
    EXPECT_GE(ctx.spill_generations.load(), 2u)
        << "budget did not force a recursive partition generation";
  }
}

TEST_F(SegmentExecTest, SpilledGroupByIsBitIdenticalAtEveryThreadCount) {
  PlanBuilder b = ex_->builder();
  // Double-valued aggregates over many multi-batch groups: the spilled
  // path must reproduce the in-memory floating-point merge association
  // exactly, not approximately.
  PlanPtr p = Finish(GroupBy(b.Rel("Ins"), b.Set("C"),
                             {Aggregate::Make(AggFunc::kSum, b.A("P")),
                              Aggregate::Make(AggFunc::kAvg, b.A("P")),
                              Aggregate::CountStar(b.A("C"))}));

  Result<Table> in_memory = RunInMemory(p.get(), nullptr);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  ASSERT_GT(in_memory->num_rows(), 0u);
  const std::string want = in_memory->SerializeColumns();

  ReferenceExecutor oracle(&ex_->catalog);
  oracle.LoadTable(ex_->hosp, &hosp_);
  oracle.LoadTable(ex_->ins, &ins_);
  Result<Table> ref = oracle.Run(p.get());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(CanonicalRows(*in_memory), CanonicalRows(*ref));

  ThreadPool two(2), eight(8);
  for (ThreadPool* pool :
       {static_cast<ThreadPool*>(nullptr), &two, &eight}) {
    ExecContext ctx;
    Result<Table> spilled = RunInMemory(p.get(), pool, 1024, &ctx);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_EQ(spilled->SerializeColumns(), want)
        << "spilled group-by diverges at "
        << (pool == nullptr ? 1 : pool->size()) << " threads";
    EXPECT_GT(ctx.spill_partitions.load(), 0u);
  }
}

TEST(SegmentDifferentialTest, SpilledRandomPlansMatchOracleAndInMemory) {
  // Random-scenario sweep with a 1-byte budget: every join build and
  // group-by state that can spill does. Results must equal both the
  // in-memory engine (bit-identical serialization) and the row oracle at
  // 1/2/8 threads.
  ThreadPool two(2), eight(8);
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Result<RandomScenario> sc = MakeRandomScenario(seed);
    ASSERT_TRUE(sc.ok()) << "seed " << seed;
    std::map<RelId, Table> data = MakeRandomData(*sc, seed ^ 0xfeed);

    ReferenceExecutor oracle(sc->catalog.get());
    for (const auto& [rel, t] : data) oracle.LoadTable(rel, &t);
    Result<Table> ref = oracle.Run(sc->plan.get());
    ASSERT_TRUE(ref.ok()) << "seed " << seed;
    std::vector<std::string> oracle_rows = CanonicalRows(*ref);

    ExecContext base_ctx;
    base_ctx.catalog = sc->catalog.get();
    for (const auto& [rel, t] : data) base_ctx.base_tables[rel] = &t;
    Result<Table> in_memory = ExecutePlan(sc->plan.get(), &base_ctx);
    ASSERT_TRUE(in_memory.ok()) << "seed " << seed;
    const std::string want = in_memory->SerializeColumns();

    for (ThreadPool* pool :
         {static_cast<ThreadPool*>(nullptr), &two, &eight}) {
      ExecContext ctx;
      ctx.catalog = sc->catalog.get();
      for (const auto& [rel, t] : data) ctx.base_tables[rel] = &t;
      ctx.pool = pool;
      ctx.memory_budget = 1;
      Result<Table> spilled = ExecutePlan(sc->plan.get(), &ctx);
      ASSERT_TRUE(spilled.ok())
          << "seed " << seed << ": " << spilled.status().ToString();
      ASSERT_EQ(spilled->SerializeColumns(), want)
          << "seed " << seed << ": spilled run not bit-identical at "
          << (pool == nullptr ? 1 : pool->size()) << " threads";
      ASSERT_EQ(CanonicalRows(*spilled), oracle_rows)
          << "seed " << seed << ": spilled run diverges from the oracle";
    }
  }
}

}  // namespace
}  // namespace mpq

// Tests for minimally extended authorized query plans (Def 5.4, Thm 5.3),
// reproducing the two extended plans of Fig 7.

#include <gtest/gtest.h>

#include "extend/extend.h"
#include "paper_example.h"
#include "profile/propagate.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class ExtendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
  }

  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c) {
      out.Insert(ex_->catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  }

  /// Collects (kind, attrs, assignee) for all enc/dec nodes.
  struct CryptoOp {
    OpKind kind;
    AttrSet attrs;
    SubjectId subject;
  };
  std::vector<CryptoOp> CryptoOps(const ExtendedPlan& ext) {
    std::vector<CryptoOp> out;
    for (const PlanNode* n : PostOrder(ext.plan.get())) {
      if (n->kind == OpKind::kEncrypt || n->kind == OpKind::kDecrypt) {
        out.push_back({n->kind, n->attrs, ext.assignment.at(n->id)});
      }
    }
    return out;
  }

  bool HasOp(const std::vector<CryptoOp>& ops, OpKind k, const AttrSet& attrs,
             SubjectId s) {
    for (const CryptoOp& op : ops) {
      if (op.kind == k && op.attrs == attrs && op.subject == s) return true;
    }
    return false;
  }

  Assignment Fig7a() {
    return Assignment{{PaperExample::kProject, ex_->H},
                      {PaperExample::kSelectD, ex_->H},
                      {PaperExample::kJoin, ex_->X},
                      {PaperExample::kGroupBy, ex_->X},
                      {PaperExample::kHaving, ex_->Y}};
  }

  Assignment Fig7b() {
    return Assignment{{PaperExample::kProject, ex_->H},
                      {PaperExample::kSelectD, ex_->H},
                      {PaperExample::kJoin, ex_->Z},
                      {PaperExample::kGroupBy, ex_->Z},
                      {PaperExample::kHaving, ex_->Y}};
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
};

TEST_F(ExtendTest, Fig7aEncryptsSCPAndDecryptsAvgP) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_EQ(ext->encrypted_attrs, Set("SCP"));

  auto ops = CryptoOps(*ext);
  // S encrypted by H (after the selection, before shipping to X).
  EXPECT_TRUE(HasOp(ops, OpKind::kEncrypt, Set("S"), ex_->H));
  // C and P encrypted by I at the source.
  EXPECT_TRUE(HasOp(ops, OpKind::kEncrypt, Set("CP"), ex_->I));
  // avg(P) decrypted by Y before the final selection.
  EXPECT_TRUE(HasOp(ops, OpKind::kDecrypt, Set("P"), ex_->Y));
  // D is never encrypted in this plan.
  for (const CryptoOp& op : ops) {
    EXPECT_FALSE(op.attrs.Contains(ex_->catalog.attrs().Find("D")));
  }
}

TEST_F(ExtendTest, Fig7aIsAuthorized) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok());
  EXPECT_TRUE(VerifyAuthorizedAssignment(*ext, *ex_->policy).ok());
}

TEST_F(ExtendTest, Fig7bEncryptsDAtSourceAndP) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7b(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  // Z sees D and P only encrypted; S and C stay plaintext for Z.
  EXPECT_EQ(ext->encrypted_attrs, Set("DP"));

  auto ops = CryptoOps(*ext);
  // D encrypted before the selection on D (assigned to H via the leaf/π),
  // so no implicit plaintext trace of D survives for Z.
  EXPECT_TRUE(HasOp(ops, OpKind::kEncrypt, Set("D"), ex_->H));
  EXPECT_TRUE(HasOp(ops, OpKind::kEncrypt, Set("P"), ex_->I));
  EXPECT_TRUE(HasOp(ops, OpKind::kDecrypt, Set("P"), ex_->Y));
  for (const CryptoOp& op : ops) {
    if (op.kind == OpKind::kEncrypt) {
      EXPECT_FALSE(op.attrs.Contains(ex_->catalog.attrs().Find("S")));
      EXPECT_FALSE(op.attrs.Contains(ex_->catalog.attrs().Find("C")));
    }
  }
  EXPECT_TRUE(VerifyAuthorizedAssignment(*ext, *ex_->policy).ok());
}

TEST_F(ExtendTest, Fig7bSelectionOnDRunsOverCiphertext) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7b(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok());
  const PlanNode* sel = FindNode(ext->plan.get(), PaperExample::kSelectD);
  ASSERT_NE(sel, nullptr);
  // In the extended plan, D is encrypted in the selection's operand.
  EXPECT_TRUE(sel->child(0)->profile.ve.Contains(
      ex_->catalog.attrs().Find("D")));
}

TEST_F(ExtendTest, NonCandidateAssignmentRejected) {
  Assignment bad = Fig7a();
  bad[PaperExample::kHaving] = ex_->X;  // X cannot see avg(P) plaintext
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), bad, *ex_->policy, ex_->U);
  EXPECT_FALSE(ext.ok());
  EXPECT_EQ(ext.status().code(), StatusCode::kUnauthorized);
}

TEST_F(ExtendTest, MissingAssignmentRejected) {
  Assignment partial = Fig7a();
  partial.erase(PaperExample::kJoin);
  auto ext =
      BuildMinimallyExtendedPlan(plan_.get(), partial, *ex_->policy, ex_->U);
  EXPECT_FALSE(ext.ok());
  EXPECT_EQ(ext.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExtendTest, AllUserAssignmentNeedsNoEncryption) {
  // If U executes everything, no encryption is needed at all (U sees all
  // attributes of the query plaintext).
  Assignment all_user;
  for (int id : {PaperExample::kProject, PaperExample::kSelectD,
                 PaperExample::kJoin, PaperExample::kGroupBy,
                 PaperExample::kHaving}) {
    all_user[id] = ex_->U;
  }
  // U is not a candidate for π over full Hosp (B invisible): assign π to H.
  all_user[PaperExample::kProject] = ex_->H;
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), all_user, *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_TRUE(ext->encrypted_attrs.empty());
  EXPECT_TRUE(CryptoOps(*ext).empty());
}

TEST_F(ExtendTest, Theorem53MinimalityFig7a) {
  // Removing any single encryption operation from the extended plan breaks
  // the authorization of the assignment (local minimality, Thm 5.3(ii)).
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok());
  std::vector<int> enc_ids;
  for (const PlanNode* n : PostOrder(ext->plan.get())) {
    if (n->kind == OpKind::kEncrypt) enc_ids.push_back(n->id);
  }
  ASSERT_FALSE(enc_ids.empty());
  for (int enc_id : enc_ids) {
    // Rebuild the tree without this encryption node.
    PlanPtr copy = ext->plan->Clone();
    // Splice out: find parent of enc node, replace with its child.
    std::vector<PlanNode*> all = PostOrder(copy.get());
    PlanNode* target = FindNode(copy.get(), enc_id);
    ASSERT_NE(target, nullptr);
    bool spliced = false;
    for (PlanNode* p : all) {
      for (auto& c : p->children) {
        if (c.get() == target) {
          PlanPtr grand = std::move(target->children[0]);
          c = std::move(grand);
          spliced = true;
          break;
        }
      }
      if (spliced) break;
    }
    ASSERT_TRUE(spliced);
    Status st = AnnotatePlan(copy.get(), ex_->catalog);
    if (!st.ok()) continue;  // plan no longer executable: fine, still broken
    // Re-verify: some node's assignee must now be unauthorized.
    ExtendedPlan mutated;
    mutated.plan = std::move(copy);
    mutated.assignment = ext->assignment;
    EXPECT_FALSE(VerifyAuthorizedAssignment(mutated, *ex_->policy).ok())
        << "removing encrypt node " << enc_id << " kept λ authorized";
  }
}

TEST_F(ExtendTest, EncDecNodesAssignedToComplementedSubjects) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7a(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok());
  for (const PlanNode* n : PostOrder(ext->plan.get())) {
    ASSERT_TRUE(ext->assignment.count(n->id) > 0)
        << "node " << n->id << " unassigned";
  }
}

TEST_F(ExtendTest, ExtendedPlanValidatesAndAnnotates) {
  auto ext = BuildMinimallyExtendedPlan(plan_.get(), Fig7b(), *ex_->policy,
                                        ex_->U);
  ASSERT_TRUE(ext.ok());
  EXPECT_TRUE(ValidatePlan(ext->plan.get(), ex_->catalog).ok());
  EXPECT_TRUE(CheckProfileMonotonicity(ext->plan.get(), ex_->catalog).ok());
}

}  // namespace
}  // namespace mpq

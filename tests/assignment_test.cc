// Tests for the assignment optimizer: DP vs exhaustive, scenario cost
// ordering, exact extended-plan costing.

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class AssignmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    plan_ = ex_->BuildQueryPlan();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    schemes_ = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
    cm_ = std::make_unique<CostModel>(&ex_->catalog, &prices_, &topo_,
                                      &schemes_);
    opt_ = std::make_unique<AssignmentOptimizer>(ex_->policy.get(), cm_.get());
    auto cp = ComputeCandidates(plan_.get(), *ex_->policy);
    ASSERT_TRUE(cp.ok());
    cp_ = std::make_unique<CandidatePlan>(std::move(*cp));
  }

  std::unique_ptr<PaperExample> ex_;
  PlanPtr plan_;
  PricingTable prices_;
  Topology topo_;
  SchemeMap schemes_;
  std::unique_ptr<CostModel> cm_;
  std::unique_ptr<AssignmentOptimizer> opt_;
  std::unique_ptr<CandidatePlan> cp_;
};

TEST_F(AssignmentTest, DpProducesAuthorizedAssignment) {
  auto r = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(VerifyAuthorizedAssignment(r->extended, *ex_->policy).ok());
  EXPECT_GT(r->exact_cost.total_usd(), 0);
}

TEST_F(AssignmentTest, DpPrefersCheapProvidersOverUser) {
  auto r = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r.ok());
  // With user cpu at 10× provider price, the heavy middle operations (join,
  // group-by) should not land on U.
  EXPECT_NE(r->lambda.at(PaperExample::kJoin), ex_->U);
  EXPECT_NE(r->lambda.at(PaperExample::kGroupBy), ex_->U);
}

TEST_F(AssignmentTest, DpCloseToExhaustiveOptimum) {
  auto dp = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(dp.ok());
  auto ex = opt_->OptimizeExhaustive(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_LE(ex->exact_cost.total_usd(), dp->exact_cost.total_usd() + 1e-12);
  // The DP edge-local approximation should stay within 2x of optimal on this
  // small plan (empirically it matches or nearly matches).
  EXPECT_LE(dp->exact_cost.total_usd(), ex->exact_cost.total_usd() * 2.0);
}

TEST_F(AssignmentTest, ExhaustiveGuardsSearchSpace) {
  auto r = opt_->OptimizeExhaustive(plan_.get(), *cp_, ex_->U,
                                    /*max_combinations=*/2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AssignmentTest, RestrictedPolicyForcesUserExecution) {
  // UA-style: only user and authorities; all middle ops land on U.
  Policy ua(&ex_->catalog, &ex_->subjects);
  AttrSet hosp_all = ex_->catalog.Get(ex_->hosp).schema.Attrs();
  AttrSet ins_all = ex_->catalog.Get(ex_->ins).schema.Attrs();
  ASSERT_TRUE(ua.Grant(ex_->hosp, ex_->H, hosp_all, {}).ok());
  ASSERT_TRUE(ua.Grant(ex_->ins, ex_->I, ins_all, {}).ok());
  ASSERT_TRUE(ua.Grant(ex_->hosp, ex_->U, hosp_all, {}).ok());
  ASSERT_TRUE(ua.Grant(ex_->ins, ex_->U, ins_all, {}).ok());
  auto cp = ComputeCandidates(plan_.get(), ua);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  AssignmentOptimizer opt(&ua, cm_.get());
  auto r = opt.OptimizeExhaustive(plan_.get(), *cp, ex_->U);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->lambda.at(PaperExample::kJoin), ex_->U);

  // And it is at least as expensive as the provider-enabled policy: the
  // restricted λ-space is a subset of the open one (exhaustive optima).
  auto open = opt_->OptimizeExhaustive(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(open.ok());
  EXPECT_LE(open->exact_cost.total_usd(),
            r->exact_cost.total_usd() * (1 + 1e-9));
}

TEST_F(AssignmentTest, CostExtendedPlanChargesTransfers) {
  auto r = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r.ok());
  CostBreakdown cost = CostExtendedPlan(r->extended, *cm_, ex_->U);
  EXPECT_GT(cost.net_usd, 0);  // at least root → user delivery
  EXPECT_GT(cost.cpu_usd, 0);
  EXPECT_GT(cost.elapsed_s, 0);
}

TEST_F(AssignmentTest, ElapsedThresholdFiltersPlans) {
  // A generous threshold keeps the cost-optimal plan.
  AssignmentOptimizer relaxed(ex_->policy.get(), cm_.get());
  relaxed.SetElapsedThreshold(1e9);
  auto r1 = relaxed.Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  // An impossible threshold yields kNotFound (Sec 7: cost minimization
  // subject to a maximum performance overhead).
  AssignmentOptimizer strict(ex_->policy.get(), cm_.get());
  strict.SetElapsedThreshold(1e-12);
  auto r2 = strict.Optimize(plan_.get(), *cp_, ex_->U);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
}

TEST_F(AssignmentTest, ThresholdPicksSlowerButCheapCompliantPlan) {
  // Threshold between the optimum's elapsed time and the fastest plan's:
  // the optimizer must return a plan within the threshold, possibly at
  // higher cost.
  auto unconstrained = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(unconstrained.ok());
  double opt_elapsed = unconstrained->exact_cost.elapsed_s;
  AssignmentOptimizer constrained(ex_->policy.get(), cm_.get());
  constrained.SetElapsedThreshold(opt_elapsed * 1.5);
  auto r = constrained.Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->exact_cost.elapsed_s, opt_elapsed * 1.5);
}

TEST_F(AssignmentTest, DpCostMatchesReportedValue) {
  auto r = opt_->Optimize(plan_.get(), *cp_, ex_->U);
  ASSERT_TRUE(r.ok());
  CostBreakdown recomputed = CostExtendedPlan(r->extended, *cm_, ex_->U);
  EXPECT_NEAR(recomputed.total_usd(), r->exact_cost.total_usd(), 1e-12);
}

}  // namespace
}  // namespace mpq

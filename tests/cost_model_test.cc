// Tests for the economic cost model (Sec 7): estimation, pricing, transfers.

#include <gtest/gtest.h>

#include "assign/cost_model.h"
#include "paper_example.h"
#include "profile/propagate.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    plan_ = ex_->BuildQueryPlan();
    schemes_ = AnalyzeSchemes(plan_.get(), ex_->catalog, SchemeCaps{});
    cm_ = std::make_unique<CostModel>(&ex_->catalog, &prices_, &topo_,
                                      &schemes_);
  }

  std::unique_ptr<PaperExample> ex_;
  PricingTable prices_;
  Topology topo_;
  PlanPtr plan_;
  SchemeMap schemes_;
  std::unique_ptr<CostModel> cm_;
};

TEST_F(CostModelTest, PaperPricingMultipliers) {
  double provider = prices_.Get(ex_->X).cpu_usd_per_hour;
  EXPECT_DOUBLE_EQ(prices_.Get(ex_->U).cpu_usd_per_hour, provider * 10);
  EXPECT_DOUBLE_EQ(prices_.Get(ex_->H).cpu_usd_per_hour, provider * 3);
}

TEST_F(CostModelTest, PaperTopologyClientLinkIsSlow) {
  EXPECT_DOUBLE_EQ(topo_.BandwidthBps(ex_->X, ex_->Y), 10e9);
  EXPECT_DOUBLE_EQ(topo_.BandwidthBps(ex_->U, ex_->X), 100e6);
  EXPECT_DOUBLE_EQ(topo_.BandwidthBps(ex_->X, ex_->U), 100e6);
}

TEST_F(CostModelTest, EstimatesShrinkThroughSelection) {
  auto est = cm_->EstimatePlan(plan_.get());
  double base = est.at(PaperExample::kHospLeaf).rows;
  double filtered = est.at(PaperExample::kSelectD).rows;
  EXPECT_LT(filtered, base);
  EXPECT_GT(filtered, 0);
}

TEST_F(CostModelTest, JoinEstimateIsFkLike) {
  auto est = cm_->EstimatePlan(plan_.get());
  double join = est.at(PaperExample::kJoin).rows;
  double sel = est.at(PaperExample::kSelectD).rows;
  double ins = est.at(PaperExample::kInsLeaf).rows;
  EXPECT_LE(join, sel * ins);
  EXPECT_GT(join, 0);
}

TEST_F(CostModelTest, GroupByReducesRows) {
  auto est = cm_->EstimatePlan(plan_.get());
  EXPECT_LT(est.at(PaperExample::kGroupBy).rows,
            est.at(PaperExample::kJoin).rows);
}

TEST_F(CostModelTest, EncryptedProfileInflatesBytes) {
  // Annotate a copy where P is encrypted: bytes grow (Paillier 24B vs 8B).
  PlanBuilder b = ex_->builder();
  PlanPtr enc = Encrypt(b.Rel("Ins"), b.Set("P"));
  AssignIds(enc.get());
  ASSERT_TRUE(AnnotatePlan(enc.get(), ex_->catalog).ok());
  PlanPtr plain = Base(ex_->ins);
  AssignIds(plain.get());
  ASSERT_TRUE(AnnotatePlan(plain.get(), ex_->catalog).ok());
  auto est_enc = cm_->EstimatePlan(enc.get());
  auto est_plain = cm_->EstimatePlan(plain.get());
  EXPECT_GT(est_enc.at(0).bytes, est_plain.at(0).bytes);
}

TEST_F(CostModelTest, NodeCostScalesWithSubjectPrice) {
  auto est = cm_->EstimatePlan(plan_.get());
  const PlanNode* join = FindNode(plan_.get(), PaperExample::kJoin);
  std::vector<const NodeEstimate*> kids = {
      &est.at(PaperExample::kSelectD), &est.at(PaperExample::kInsLeaf)};
  double at_user = cm_->NodeCost(join, est.at(join->id), kids, ex_->U).cpu_usd;
  double at_provider =
      cm_->NodeCost(join, est.at(join->id), kids, ex_->X).cpu_usd;
  EXPECT_NEAR(at_user / at_provider, 10.0, 1e-6);
}

TEST_F(CostModelTest, TransferFreeWithinSubject) {
  CostBreakdown c = cm_->TransferCost(1e6, ex_->X, ex_->X);
  EXPECT_DOUBLE_EQ(c.total_usd(), 0);
  EXPECT_DOUBLE_EQ(c.elapsed_s, 0);
}

TEST_F(CostModelTest, TransferCostsEgressAndTime) {
  CostBreakdown c = cm_->TransferCost(1e9, ex_->X, ex_->U);
  EXPECT_GT(c.net_usd, 0);
  EXPECT_NEAR(c.elapsed_s, 8e9 / 100e6, 1e-6);  // 100 Mbps client link
}

TEST_F(CostModelTest, CryptoCostPaillierDominates) {
  AttrId p = ex_->catalog.attrs().Find("P");
  AttrId s = ex_->catalog.attrs().Find("S");
  double hom = cm_->CryptoCost(AttrSet{p}, 1000, ex_->X).cpu_usd;
  double det = cm_->CryptoCost(AttrSet{s}, 1000, ex_->X).cpu_usd;
  EXPECT_GT(hom, det * 100);
}

TEST_F(CostModelTest, BreakdownAccumulates) {
  CostBreakdown a;
  a.cpu_usd = 1;
  a.io_usd = 2;
  CostBreakdown b;
  b.net_usd = 3;
  b.elapsed_s = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.total_usd(), 6);
  EXPECT_DOUBLE_EQ(a.elapsed_s, 4);
}

TEST_F(CostModelTest, UdfCpuDominatesOtherOps) {
  PlanBuilder b = ex_->builder();
  PlanPtr udf = Udf(b.Rel("Hosp"), "score", b.Set("S,B"), b.A("S"));
  PlanPtr plan = std::move(FinishPlan(std::move(udf), ex_->catalog)).value();
  ASSERT_TRUE(AnnotatePlan(plan.get(), ex_->catalog).ok());
  auto est = cm_->EstimatePlan(plan.get());
  EXPECT_GT(est.at(0).cpu_micros, est.at(1).cpu_micros * 100);
}

}  // namespace
}  // namespace mpq

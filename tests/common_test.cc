// Unit tests for src/common: Status/Result, AttrRegistry, AttrSet,
// DisjointSet, Value, Rng.

#include <gtest/gtest.h>

#include "common/attr.h"
#include "common/attr_set.h"
#include "common/disjoint_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace mpq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Unauthorized("nope");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnauthorized);
  EXPECT_EQ(st.message(), "nope");
  EXPECT_EQ(st.ToString(), "Unauthorized: nope");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kUnauthorized,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

Result<int> Chain(int x) {
  MPQ_ASSIGN_OR_RETURN(int h, Half(x));
  MPQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  EXPECT_EQ(*Chain(8), 2);
  EXPECT_FALSE(Chain(6).ok());  // 6/2 = 3, odd
}

TEST(AttrRegistryTest, InternIsIdempotent) {
  AttrRegistry reg;
  AttrId a = reg.Intern("S");
  EXPECT_EQ(reg.Intern("S"), a);
  EXPECT_EQ(reg.Find("S"), a);
  EXPECT_EQ(reg.Find("missing"), kInvalidAttr);
  EXPECT_EQ(reg.Name(a), "S");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(AttrSetTest, BasicOps) {
  AttrSet s{1, 5, 64, 200};
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.Contains(64));
  EXPECT_FALSE(s.Contains(63));
  EXPECT_TRUE(s.Erase(64));
  EXPECT_FALSE(s.Erase(64));
  EXPECT_EQ(s.size(), 3u);
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a{1, 2, 3}, b{3, 4};
  EXPECT_EQ(a.Union(b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (AttrSet{3}));
  EXPECT_EQ(a.Difference(b), (AttrSet{1, 2}));
  EXPECT_TRUE((AttrSet{1, 2}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((AttrSet{9}).Intersects(a));
}

TEST(AttrSetTest, EqualityIgnoresTrailingZeroWords) {
  AttrSet a{1};
  AttrSet b{1, 300};
  b.Erase(300);
  EXPECT_EQ(a, b);
}

TEST(AttrSetTest, ForEachAscending) {
  AttrSet s{200, 1, 65};
  std::vector<AttrId> seen;
  s.ForEach([&](AttrId a) { seen.push_back(a); });
  EXPECT_EQ(seen, (std::vector<AttrId>{1, 65, 200}));
}

TEST(AttrSetTest, ToStringSingleCharConcat) {
  AttrRegistry reg;
  AttrSet s;
  s.Insert(reg.Intern("S"));
  s.Insert(reg.Intern("D"));
  s.Insert(reg.Intern("T"));
  EXPECT_EQ(s.ToString(reg), "SDT");
}

TEST(DisjointSetTest, UnionFindAndClasses) {
  DisjointSet ds;
  ds.Union(1, 2);
  ds.Union(3, 4);
  EXPECT_TRUE(ds.Same(1, 2));
  EXPECT_FALSE(ds.Same(1, 3));
  ds.Union(2, 3);
  EXPECT_TRUE(ds.Same(1, 4));
  EXPECT_EQ(ds.Classes().size(), 1u);
  EXPECT_EQ(ds.ClassOf(4), (AttrSet{1, 2, 3, 4}));
}

TEST(DisjointSetTest, NonMembersAreInNoClass) {
  DisjointSet ds;
  ds.Union(1, 2);
  EXPECT_FALSE(ds.IsMember(7));
  EXPECT_FALSE(ds.Same(7, 7));
  EXPECT_TRUE(ds.ClassOf(7).empty());
}

TEST(DisjointSetTest, UnionAllAndMerge) {
  DisjointSet a;
  a.UnionAll(AttrSet{1, 2, 3});
  DisjointSet b;
  b.Union(3, 9);
  a.Merge(b);
  EXPECT_TRUE(a.Same(1, 9));
  // Singleton UnionAll is a no-op.
  DisjointSet c;
  c.UnionAll(AttrSet{5});
  EXPECT_TRUE(c.empty());
}

TEST(DisjointSetTest, EqualityIsStructural) {
  DisjointSet a, b;
  a.Union(1, 2);
  b.Union(2, 1);
  EXPECT_TRUE(a == b);
  b.Union(3, 4);
  EXPECT_FALSE(a == b);
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(std::string("b")).Compare(Value(std::string("a"))), 0);
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);  // nulls first
  // Numbers sort before strings.
  EXPECT_LT(Value(int64_t{5}).Compare(Value(std::string("a"))), 0);
}

TEST(ValueTest, SerializeRoundTrip) {
  for (const Value& v :
       {Value(int64_t{-42}), Value(3.25), Value(std::string("hi")),
        Value::Null()}) {
    Result<Value> back = Value::Deserialize(v.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(Value::Deserialize("").ok());
  EXPECT_FALSE(Value::Deserialize("Ix").ok());
  EXPECT_FALSE(Value::Deserialize("Z123").ok());
}

TEST(ValueTest, HashDiffersAcrossValues) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_EQ(Value(std::string("x")).Hash(), Value(std::string("x")).Hash());
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StrUtilTest, JoinSplitTrimCase) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

}  // namespace
}  // namespace mpq

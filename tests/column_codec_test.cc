// Tests for the column-level crypto codec: span encryption/decryption over
// the column representations the engine produces (typed vectors, null
// masks, the kCell fallback, pure ciphertext columns), the fold-only mode a
// provider holding just the public modulus gets, and the lazy fold
// primitive against the eager Add() chain.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/column_codec.h"
#include "crypto/keyring.h"
#include "exec/column.h"

namespace mpq {
namespace {

KeyMaterial TestKey() { return MakeKeyMaterial(/*seed=*/77, /*key_id=*/4); }

/// Paillier-encrypts `values` through the codec into a kEnc column.
ColumnData EncryptColumn(const ColumnCodec& codec,
                         const std::vector<int64_t>& values,
                         uint64_t nonce_base) {
  std::vector<Cell> cells;
  cells.reserve(values.size());
  for (int64_t v : values) cells.emplace_back(Value(v));
  ColumnData plain = ColumnFromCells(std::move(cells));
  std::vector<EncValue> encs(plain.size());
  EXPECT_TRUE(codec.EncryptSpan(plain, 0, plain.size(), EncScheme::kPaillier,
                                nonce_base, encs.data())
                  .ok());
  return ColumnFromEnc(std::move(encs));
}

TEST(ColumnCodecTest, ZeroRowSpansAreNoOps) {
  KeyMaterial km = TestKey();
  ColumnCodec codec(km);
  ColumnData empty = ColumnFromCells({});
  EXPECT_TRUE(codec.EncryptSpan(empty, 0, 0, EncScheme::kPaillier, 1, nullptr)
                  .ok());
  EXPECT_TRUE(
      codec.DecryptSpan(empty, 0, 0, DataType::kInt64, false, nullptr).ok());
  Result<uint128> fold = codec.FoldRows(empty, nullptr, 0);
  ASSERT_TRUE(fold.ok());
  EXPECT_EQ(*fold, uint128{0});
}

TEST(ColumnCodecTest, NullMaskSkipsDecryptionAndFastEncryptPath) {
  KeyMaterial km = TestKey();
  ColumnCodec codec(km);
  // A column with a null forfeits the typed Paillier fast path; DET
  // serializes the null like the per-cell path always has.
  std::vector<Cell> cells;
  cells.emplace_back(Value(int64_t{10}));
  cells.emplace_back(Value::Null());
  cells.emplace_back(Value(int64_t{-3}));
  ColumnData plain = ColumnFromCells(std::move(cells));
  std::vector<EncValue> encs(plain.size());
  ASSERT_TRUE(codec.EncryptSpan(plain, 0, plain.size(),
                                EncScheme::kDeterministic, 5, encs.data())
                  .ok());
  for (size_t i = 0; i < encs.size(); ++i) {
    Cell c = plain.GetCell(i);
    Result<EncValue> single =
        EncryptValue(c.plain(), EncScheme::kDeterministic, 4, km, 5 + i);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(encs[i], *single) << "cell " << i;
  }
  // DecryptSpan over a column whose null mask marks a row emits a plain
  // NULL for it without touching the ciphertext machinery.
  ColumnData enc_col = ColumnFromEnc(std::move(encs));
  std::vector<Cell> out(enc_col.size());
  ASSERT_TRUE(codec.DecryptSpan(enc_col, 0, enc_col.size(), DataType::kInt64,
                                false, out.data())
                  .ok());
  EXPECT_EQ(out[0].plain(), Value(int64_t{10}));
  EXPECT_TRUE(out[1].plain().is_null());
  EXPECT_EQ(out[2].plain(), Value(int64_t{-3}));
}

TEST(ColumnCodecTest, CellFallbackPassesPlainCellsThrough) {
  KeyMaterial km = TestKey();
  ColumnCodec codec(km);
  // A mixed column (ciphertexts with a stray plaintext cell) takes the
  // kCell representation; DecryptSpan decrypts the ciphertexts and passes
  // the plaintext through untouched.
  Result<EncValue> ev =
      EncryptValue(Value(int64_t{42}), EncScheme::kPaillier, 4, km, 9);
  ASSERT_TRUE(ev.ok());
  std::vector<Cell> cells;
  cells.emplace_back(*ev);
  cells.emplace_back(Value(int64_t{1234}));
  ColumnData mixed = ColumnFromCells(std::move(cells));
  ASSERT_EQ(mixed.rep(), ColumnRep::kCell);
  std::vector<Cell> out(mixed.size());
  ASSERT_TRUE(codec.DecryptSpan(mixed, 0, mixed.size(), DataType::kInt64,
                                false, out.data())
                  .ok());
  EXPECT_EQ(out[0].plain(), Value(int64_t{42}));
  EXPECT_EQ(out[1].plain(), Value(int64_t{1234}));
}

TEST(ColumnCodecTest, DecryptSpanDividesHomAverages) {
  KeyMaterial km = TestKey();
  ColumnCodec codec(km);
  Result<EncValue> ev =
      EncryptValue(Value(int64_t{90}), EncScheme::kPaillier, 4, km, 11);
  ASSERT_TRUE(ev.ok());
  EncValue sum = *ev;
  sum.aux = 4;  // four values folded into the ciphertext
  ColumnData col = ColumnFromEnc({sum});
  std::vector<Cell> out(1);
  ASSERT_TRUE(
      codec.DecryptSpan(col, 0, 1, DataType::kInt64, true, out.data()).ok());
  EXPECT_DOUBLE_EQ(out[0].plain().AsDouble(), 22.5);
}

TEST(ColumnCodecTest, FoldRowsMatchesEagerAddChainAndIsReusable) {
  KeyMaterial km = TestKey();
  ColumnCodec codec(km);
  ColumnData col = EncryptColumn(codec, {3, 1, 4, 1, 5, 9, 2, 6}, 100);
  PaillierSumCtx eager(km.paillier.n);
  // An arbitrary row subset, folded in the given order.
  const std::vector<uint32_t> rows = {6, 0, 3, 7, 2};
  uint128 chain = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    uint128 c = *PaillierCipherFromBytes(col.EncAt(rows[i]).blob);
    chain = i == 0 ? c : eager.Add(chain, c);
  }
  Result<uint128> fold = codec.FoldRows(col, rows.data(), rows.size());
  ASSERT_TRUE(fold.ok());
  EXPECT_EQ(*fold, chain);
  int64_t decoded = PaillierDecodeSigned(
      km.paillier, *PaillierDecrypt(km.paillier, *fold));
  EXPECT_EQ(decoded, 3 + 4 + 1 + 2 + 6);
  // The codec's fold state resets per call: a second, different fold on the
  // same codec is unaffected by the first.
  const std::vector<uint32_t> rows2 = {1, 4};
  uint128 c1 = *PaillierCipherFromBytes(col.EncAt(1).blob);
  uint128 c4 = *PaillierCipherFromBytes(col.EncAt(4).blob);
  Result<uint128> fold2 = codec.FoldRows(col, rows2.data(), rows2.size());
  ASSERT_TRUE(fold2.ok());
  EXPECT_EQ(*fold2, eager.Add(c1, c4));
}

TEST(ColumnCodecTest, FoldOnlyCodecAggregatesButRefusesKeyOperations) {
  KeyMaterial km = TestKey();
  ColumnCodec full(km);
  ColumnData col = EncryptColumn(full, {20, 30, -8}, 500);
  // The provider-side codec holds only (key id, public modulus) — the
  // paper's honest-but-curious provider: it can aggregate ciphertexts but
  // cannot encrypt or decrypt anything.
  ColumnCodec fold_only(/*key_id=*/4, km.paillier.n);
  EXPECT_FALSE(fold_only.has_material());
  EXPECT_EQ(fold_only.key_id(), uint64_t{4});
  const uint32_t rows[] = {0, 1, 2};
  Result<uint128> fold = fold_only.FoldRows(col, rows, 3);
  ASSERT_TRUE(fold.ok());
  Result<uint128> want = full.FoldRows(col, rows, 3);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*fold, *want);
  EXPECT_EQ(PaillierDecodeSigned(km.paillier,
                                 *PaillierDecrypt(km.paillier, *fold)),
            42);

  ColumnData plain = ColumnFromCells({Cell(Value(int64_t{1}))});
  std::vector<EncValue> encs(1);
  Status enc_st = fold_only.EncryptSpan(plain, 0, 1, EncScheme::kPaillier, 1,
                                        encs.data());
  EXPECT_EQ(enc_st.code(), StatusCode::kNotFound);
  std::vector<Cell> out(col.size());
  Status dec_st =
      fold_only.DecryptSpan(col, 0, col.size(), DataType::kInt64, false,
                            out.data());
  EXPECT_EQ(dec_st.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mpq

// Tests for operation requirements (Ap derivation) and per-attribute scheme
// selection.

#include <gtest/gtest.h>

#include "assign/schemes.h"
#include "paper_example.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class SchemesTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakePaperExample(); }
  AttrId A(const char* n) { return ex_->catalog.attrs().Find(n); }
  std::unique_ptr<PaperExample> ex_;
};

TEST_F(SchemesTest, PaperQueryPlaintextNeeds) {
  PlanPtr plan = ex_->BuildQueryPlan();
  // Only the final having selection needs plaintext (avg(P) under HOM is not
  // range-comparable); every other operation runs on ciphertexts.
  for (const PlanNode* n : PostOrder(plan.get())) {
    if (n->id == PaperExample::kHaving) {
      EXPECT_EQ(n->needs_plaintext, AttrSet{A("P")});
    } else {
      EXPECT_TRUE(n->needs_plaintext.empty())
          << "node " << n->id << " unexpectedly needs plaintext";
    }
  }
}

TEST_F(SchemesTest, PaperQuerySchemes) {
  PlanPtr plan = ex_->BuildQueryPlan();
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex_->catalog, SchemeCaps{});
  // S and C are equi-joined: deterministic, and identical (shared cluster).
  EXPECT_EQ(schemes.at(A("S")), EncScheme::kDeterministic);
  EXPECT_EQ(schemes.at(A("C")), EncScheme::kDeterministic);
  // D: equality selection → deterministic.
  EXPECT_EQ(schemes.at(A("D")), EncScheme::kDeterministic);
  // T: grouping → deterministic.
  EXPECT_EQ(schemes.at(A("T")), EncScheme::kDeterministic);
  // P: avg → Paillier.
  EXPECT_EQ(schemes.at(A("P")), EncScheme::kPaillier);
  // B: never operated on → random.
  EXPECT_EQ(schemes.at(A("B")), EncScheme::kRandom);
}

TEST_F(SchemesTest, NoHomCapabilityForcesPlaintextAggregation) {
  PlanPtr plan = ex_->BuildQueryPlan();
  SchemeCaps caps;
  caps.hom = false;
  ASSERT_TRUE(DerivePlaintextNeeds(plan.get(), ex_->catalog, caps).ok());
  const PlanNode* gb = FindNode(plan.get(), PaperExample::kGroupBy);
  EXPECT_TRUE(gb->needs_plaintext.Contains(A("P")));
}

TEST_F(SchemesTest, NoDetCapabilityForcesPlaintextJoin) {
  PlanPtr plan = ex_->BuildQueryPlan();
  SchemeCaps caps;
  caps.det = false;
  caps.ope = false;
  ASSERT_TRUE(DerivePlaintextNeeds(plan.get(), ex_->catalog, caps).ok());
  const PlanNode* join = FindNode(plan.get(), PaperExample::kJoin);
  EXPECT_TRUE(join->needs_plaintext.Contains(A("S")));
  EXPECT_TRUE(join->needs_plaintext.Contains(A("C")));
  const PlanNode* sel = FindNode(plan.get(), PaperExample::kSelectD);
  EXPECT_TRUE(sel->needs_plaintext.Contains(A("D")));
}

TEST_F(SchemesTest, RangeOnStringNeedsPlaintext) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Select(b.Rel("Hosp"),
                     {b.Pv("D", CmpOp::kGt, Value(std::string("m")))});
  PlanPtr plan = std::move(FinishPlan(std::move(p), ex_->catalog)).value();
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan.get(), ex_->catalog, SchemeCaps{}).ok());
  EXPECT_TRUE(plan->needs_plaintext.Contains(A("D")));
}

TEST_F(SchemesTest, RangeOnIntUsesOpe) {
  PlanBuilder b = ex_->builder();
  PlanPtr p =
      Select(b.Rel("Hosp"), {b.Pv("B", CmpOp::kGt, Value(int64_t{1980}))});
  PlanPtr plan = std::move(FinishPlan(std::move(p), ex_->catalog)).value();
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan.get(), ex_->catalog, SchemeCaps{}).ok());
  EXPECT_TRUE(plan->needs_plaintext.empty());
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex_->catalog, SchemeCaps{});
  EXPECT_EQ(schemes.at(A("B")), EncScheme::kOpe);
}

TEST_F(SchemesTest, MinMaxUsesOpe) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = GroupBy(b.Rel("Hosp"), b.Set("D"),
                      {Aggregate::Make(AggFunc::kMax, b.A("B"))});
  PlanPtr plan = std::move(FinishPlan(std::move(p), ex_->catalog)).value();
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex_->catalog, SchemeCaps{});
  EXPECT_EQ(schemes.at(A("B")), EncScheme::kOpe);
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan.get(), ex_->catalog, SchemeCaps{}).ok());
  EXPECT_TRUE(plan->needs_plaintext.empty());
}

TEST_F(SchemesTest, UdfRequiresPlaintextUnlessEncCapable) {
  PlanBuilder b = ex_->builder();
  PlanPtr p1 = Udf(b.Rel("Hosp"), "score", b.Set("S,B"), b.A("S"));
  PlanPtr plan1 = std::move(FinishPlan(std::move(p1), ex_->catalog)).value();
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan1.get(), ex_->catalog, SchemeCaps{}).ok());
  EXPECT_EQ(plan1->needs_plaintext, b.Set("S,B"));

  PlanPtr p2 = Udf(b.Rel("Hosp"), "enc_score", b.Set("S,B"), b.A("S"));
  PlanPtr plan2 = std::move(FinishPlan(std::move(p2), ex_->catalog)).value();
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan2.get(), ex_->catalog, SchemeCaps{}).ok());
  EXPECT_TRUE(plan2->needs_plaintext.empty());
}

TEST_F(SchemesTest, ClusterSharesSchemeAcrossComparedAttrs) {
  // B compared to S (attr-attr) and B also range-filtered: the S/B cluster
  // gets OPE for both so the comparison stays evaluable.
  PlanBuilder b = ex_->builder();
  PlanPtr p = Select(Select(b.Rel("Hosp"), {b.Pa("S", CmpOp::kEq, "B")}),
                     {b.Pv("B", CmpOp::kLt, Value(int64_t{5}))});
  PlanPtr plan = std::move(FinishPlan(std::move(p), ex_->catalog)).value();
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex_->catalog, SchemeCaps{});
  EXPECT_EQ(schemes.at(A("S")), schemes.at(A("B")));
  EXPECT_EQ(schemes.at(A("B")), EncScheme::kOpe);
}

TEST_F(SchemesTest, MakeCryptoPlanMapsKeys) {
  SchemeMap schemes{{A("S"), EncScheme::kDeterministic},
                    {A("C"), EncScheme::kDeterministic}};
  PlanKeys keys;
  KeyGroup g;
  g.key_id = 7;
  g.attrs = AttrSet{A("S"), A("C")};
  keys.groups.push_back(g);
  CryptoPlan cp = MakeCryptoPlan(schemes, keys);
  EXPECT_EQ(cp.KeyOf(A("S")), 7u);
  EXPECT_EQ(cp.KeyOf(A("C")), 7u);
  EXPECT_EQ(cp.SchemeOf(A("S")), EncScheme::kDeterministic);
  // Unknown attrs default to key 0 / DET.
  EXPECT_EQ(cp.KeyOf(A("B")), 0u);
}

}  // namespace
}  // namespace mpq

// End-to-end integration test over the paper's running example: SQL →
// plan → profiles → candidates → optimizer → minimally extended plan →
// keys → dispatch → distributed encrypted execution, checked against the
// plaintext answer. This is Figs 1-8 as one pipeline.

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "exec/dispatch.h"
#include "exec/distributed.h"
#include "paper_example.h"
#include "sql/binder.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

TEST(PaperExampleTest, FullPipeline) {
  auto ex = MakePaperExample();

  // 1. Parse + bind the paper's SQL.
  auto plan_r = PlanFromSql(
      "select T, avg(P) from Hosp join Ins on S = C "
      "where D = 'stroke' group by T having avg(P) > 100",
      ex->catalog);
  ASSERT_TRUE(plan_r.ok()) << plan_r.status().ToString();
  PlanPtr plan = std::move(*plan_r);

  // 2. Operation requirements + profiles.
  ASSERT_TRUE(DerivePlaintextNeeds(plan.get(), ex->catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan.get(), ex->catalog).ok());

  // 3. Candidates.
  auto cp = ComputeCandidates(plan.get(), *ex->policy);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();

  // 4. Cost-based assignment.
  PricingTable prices = PricingTable::PaperDefaults(ex->subjects);
  Topology topo = Topology::PaperDefaults(ex->subjects);
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex->catalog, SchemeCaps{});
  CostModel cm(&ex->catalog, &prices, &topo, &schemes);
  AssignmentOptimizer opt(ex->policy.get(), &cm);
  auto assignment = opt.Optimize(plan.get(), *cp, ex->U);
  ASSERT_TRUE(assignment.ok()) << assignment.status().ToString();
  EXPECT_TRUE(
      VerifyAuthorizedAssignment(assignment->extended, *ex->policy).ok());

  // 5. Keys and dispatch.
  PlanKeys keys = DeriveQueryPlanKeys(assignment->extended);
  auto dispatch = BuildDispatch(assignment->extended, keys, *ex->policy, ex->U);
  ASSERT_TRUE(dispatch.ok()) << dispatch.status().ToString();
  EXPECT_FALSE(dispatch->messages.empty());

  // 6. Distributed encrypted execution.
  DistributedRuntime rt(&ex->catalog, &ex->subjects);
  rt.LoadTable(ex->hosp, ex->HospData());
  rt.LoadTable(ex->ins, ex->InsData());
  rt.DistributeKeys(keys, ex->U, 99);
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));
  auto result = rt.Run(assignment->extended, ex->U);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // 7. The answer matches the plaintext execution.
  ASSERT_EQ(result->result.num_rows(), 1u);
  int tc = result->result.ColIndex(ex->catalog.attrs().Find("T"));
  int pc = result->result.ColIndex(ex->catalog.attrs().Find("P"));
  EXPECT_EQ(result->result.row(0)[static_cast<size_t>(tc)].plain(),
            Value(std::string("tpa")));
  EXPECT_NEAR(
      result->result.row(0)[static_cast<size_t>(pc)].plain().AsDouble(), 160.0,
      1e-3);
}

TEST(PaperExampleTest, CheaperThanUserOnlyExecution) {
  auto ex = MakePaperExample();
  PlanPtr plan = ex->BuildQueryPlan();
  PricingTable prices = PricingTable::PaperDefaults(ex->subjects);
  Topology topo = Topology::PaperDefaults(ex->subjects);
  SchemeMap schemes = AnalyzeSchemes(plan.get(), ex->catalog, SchemeCaps{});
  CostModel cm(&ex->catalog, &prices, &topo, &schemes);

  auto cp = ComputeCandidates(plan.get(), *ex->policy);
  ASSERT_TRUE(cp.ok());
  AssignmentOptimizer opt(ex->policy.get(), &cm);
  auto best = opt.Optimize(plan.get(), *cp, ex->U);
  ASSERT_TRUE(best.ok());

  // Manual "user does everything" assignment for comparison.
  Assignment all_user{{PaperExample::kProject, ex->H},
                      {PaperExample::kSelectD, ex->U},
                      {PaperExample::kJoin, ex->U},
                      {PaperExample::kGroupBy, ex->U},
                      {PaperExample::kHaving, ex->U}};
  auto user_ext =
      BuildMinimallyExtendedPlan(plan.get(), all_user, *ex->policy, ex->U);
  ASSERT_TRUE(user_ext.ok());
  CostBreakdown user_cost = CostExtendedPlan(*user_ext, cm, ex->U);
  EXPECT_LT(best->exact_cost.total_usd(), user_cost.total_usd());
}

}  // namespace
}  // namespace mpq

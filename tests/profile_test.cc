// Tests for relation profiles and the Fig 2 propagation rules, including the
// running example's profiles (Fig 3) and Theorem 3.1.

#include <gtest/gtest.h>

#include "paper_example.h"
#include "profile/propagate.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakePaperExample(); }
  AttrId A(const char* name) {
    return ex_->catalog.attrs().Find(name);
  }
  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c; ++c) {
      out.Insert(A(std::string(1, *c).c_str()));
    }
    return out;
  }
  std::unique_ptr<PaperExample> ex_;
};

TEST_F(ProfileTest, BaseRelationProfile) {
  RelationProfile p =
      RelationProfile::ForBase(ex_->catalog.Get(ex_->hosp).schema.Attrs());
  EXPECT_EQ(p.vp, Set("SBDT"));
  EXPECT_TRUE(p.ve.empty());
  EXPECT_TRUE(p.ip.empty());
  EXPECT_TRUE(p.ie.empty());
  EXPECT_TRUE(p.eq.empty());
}

TEST_F(ProfileTest, RunningExampleProfilesMatchFig3) {
  PlanPtr plan = ex_->BuildQueryPlan();

  // π S,D,T over Hosp: v:SDT.
  const PlanNode* proj = FindNode(plan.get(), PaperExample::kProject);
  EXPECT_EQ(proj->profile.vp, Set("SDT"));
  EXPECT_TRUE(proj->profile.ip.empty());

  // σ D='stroke': v:SDT, i:D.
  const PlanNode* sel = FindNode(plan.get(), PaperExample::kSelectD);
  EXPECT_EQ(sel->profile.vp, Set("SDT"));
  EXPECT_EQ(sel->profile.ip, Set("D"));

  // ⋈ S=C: v:SDTCP, i:D, ≃:{SC}.
  const PlanNode* join = FindNode(plan.get(), PaperExample::kJoin);
  EXPECT_EQ(join->profile.vp, Set("SDTCP"));
  EXPECT_EQ(join->profile.ip, Set("D"));
  ASSERT_EQ(join->profile.eq.Classes().size(), 1u);
  EXPECT_EQ(join->profile.eq.Classes()[0], Set("SC"));

  // γ T,avg(P): v:TP, i:DT, ≃:{SC}.
  const PlanNode* gb = FindNode(plan.get(), PaperExample::kGroupBy);
  EXPECT_EQ(gb->profile.vp, Set("TP"));
  EXPECT_EQ(gb->profile.ip, Set("DT"));
  ASSERT_EQ(gb->profile.eq.Classes().size(), 1u);

  // σ avg(P)>100: v:TP, i:DTP, ≃:{SC}.
  const PlanNode* having = FindNode(plan.get(), PaperExample::kHaving);
  EXPECT_EQ(having->profile.vp, Set("TP"));
  EXPECT_EQ(having->profile.ip, Set("DTP"));
}

TEST_F(ProfileTest, EncryptionMovesAttrsToVisibleEncrypted) {
  PlanBuilder b = ex_->builder();
  PlanPtr p = Encrypt(b.Rel("Hosp"), Set("SB"));
  ASSERT_TRUE(FinishPlan(std::move(p), ex_->catalog).ok());

  PlanPtr q = Encrypt(b.Rel("Hosp"), Set("SB"));
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.vp, Set("DT"));
  EXPECT_EQ(q->profile.ve, Set("SB"));
}

TEST_F(ProfileTest, DecryptionInverseOfEncryption) {
  PlanBuilder b = ex_->builder();
  PlanPtr q = Decrypt(Encrypt(b.Rel("Hosp"), Set("SB")), Set("SB"));
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.vp, Set("SBDT"));
  EXPECT_TRUE(q->profile.ve.empty());
}

TEST_F(ProfileTest, EncryptNonPlaintextFailsStrict) {
  PlanBuilder b = ex_->builder();
  PlanPtr q = Encrypt(Encrypt(b.Rel("Hosp"), Set("S")), Set("S"));
  AssignIds(q.get());
  Status st = AnnotatePlan(q.get(), ex_->catalog);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(ProfileTest, DecryptNonEncryptedFailsStrict) {
  PlanBuilder b = ex_->builder();
  PlanPtr q = Decrypt(b.Rel("Hosp"), Set("S"));
  AssignIds(q.get());
  Status st = AnnotatePlan(q.get(), ex_->catalog);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(ProfileTest, MixedVisibilityComparisonRejected) {
  // S encrypted, compared with plaintext C in a join: not executable.
  PlanBuilder b = ex_->builder();
  PlanPtr l = Encrypt(Project(b.Rel("Hosp"), Set("S")), Set("S"));
  PlanPtr q = Join(std::move(l), b.Rel("Ins"), {b.Pa("S", CmpOp::kEq, "C")});
  AssignIds(q.get());
  Status st = AnnotatePlan(q.get(), ex_->catalog);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(ProfileTest, EncryptedComparisonAllowed) {
  PlanBuilder b = ex_->builder();
  PlanPtr l = Encrypt(Project(b.Rel("Hosp"), Set("S")), Set("S"));
  PlanPtr r = Encrypt(b.Rel("Ins"), Set("C"));
  PlanPtr q =
      Join(std::move(l), std::move(r), {b.Pa("S", CmpOp::kEq, "C")});
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.ve, Set("SC"));
  EXPECT_EQ(q->profile.vp, Set("P"));
}

TEST_F(ProfileTest, SelectionOnEncryptedAttrYieldsEncryptedImplicit) {
  PlanBuilder b = ex_->builder();
  PlanPtr q = Select(Encrypt(b.Rel("Ins"), Set("P")),
                     {b.Pv("P", CmpOp::kEq, Value(1.0))});
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.ie, Set("P"));
  EXPECT_TRUE(q->profile.ip.empty());
}

TEST_F(ProfileTest, UdfMergesInputsIntoEquivalence) {
  PlanBuilder b = ex_->builder();
  PlanPtr q = Udf(b.Rel("Hosp"), "score", Set("SB"), A("S"));
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.vp, Set("SDT"));  // B consumed
  ASSERT_EQ(q->profile.eq.Classes().size(), 1u);
  EXPECT_EQ(q->profile.eq.Classes()[0], Set("SB"));
}

TEST_F(ProfileTest, CartesianUnionsProfiles) {
  PlanBuilder b = ex_->builder();
  PlanPtr l =
      Select(b.Rel("Hosp"), {b.Pv("B", CmpOp::kGt, Value(int64_t{1980}))});
  PlanPtr q = Cartesian(std::move(l), b.Rel("Ins"));
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  EXPECT_EQ(q->profile.vp, Set("SBDTCP"));
  EXPECT_EQ(q->profile.ip, Set("B"));
}

TEST_F(ProfileTest, GroupByCountStarKeepsOnlyGroupAttrs) {
  PlanBuilder b = ex_->builder();
  AttrId cnt = ex_->catalog.attrs().Intern("cnt");
  PlanPtr q = GroupBy(b.Rel("Hosp"), Set("D"), {Aggregate::CountStar(cnt)});
  AssignIds(q.get());
  ASSERT_TRUE(AnnotatePlan(q.get(), ex_->catalog).ok());
  AttrSet expected_vp = Set("D");
  expected_vp.Insert(cnt);
  EXPECT_EQ(q->profile.vp, expected_vp);
  EXPECT_EQ(q->profile.ip, Set("D"));
}

TEST_F(ProfileTest, Theorem31HoldsOnRunningExample) {
  PlanPtr plan = ex_->BuildQueryPlan();
  EXPECT_TRUE(CheckProfileMonotonicity(plan.get(), ex_->catalog).ok());
}

TEST_F(ProfileTest, ProfileToStringIsInformative) {
  PlanPtr plan = ex_->BuildQueryPlan();
  std::string s = plan->profile.ToString(ex_->catalog.attrs());
  EXPECT_NE(s.find("v:"), std::string::npos);
  EXPECT_NE(s.find("eq:"), std::string::npos);
  EXPECT_NE(s.find("{SC}"), std::string::npos);  // ascending id order
}

}  // namespace
}  // namespace mpq

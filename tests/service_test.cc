// QueryService tests: the sharded plan cache, policy-epoch invalidation (a
// cached plan must never execute under a policy it wasn't authorized
// against), warm/cold result identity under concurrent sessions at several
// thread counts, admission control, SQL normalization, and metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/pricing.h"
#include "net/topology.h"
#include "paper_example.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "service/sharded_cache.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

void ExpectCellsIdentical(const Cell& a, const Cell& b, const char* where) {
  ASSERT_EQ(a.is_plain(), b.is_plain()) << where;
  if (a.is_plain()) {
    EXPECT_EQ(a.plain(), b.plain()) << where;
  } else {
    EXPECT_EQ(a.enc(), b.enc()) << where;
  }
}

void ExpectTablesIdentical(const Table& a, const Table& b, const char* where) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << where;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << where;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    EXPECT_EQ(a.columns()[i].attr, b.columns()[i].attr) << where;
    EXPECT_EQ(a.columns()[i].encrypted, b.columns()[i].encrypted) << where;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ExpectCellsIdentical(a.row(r)[c], b.row(r)[c], where);
    }
  }
}

constexpr const char* kPaperSql =
    "select T, avg(P) from Hosp join Ins on S = C "
    "where D = 'stroke' group by T having avg(P) > 100";

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    hosp_ = ex_->HospData();
    ins_ = ex_->InsData();
  }

  std::unique_ptr<QueryService> MakeService(ServiceConfig config = {}) {
    auto service = std::make_unique<QueryService>(
        &ex_->catalog, &ex_->subjects, ex_->policy.get(), &prices_, &topo_,
        config);
    service->LoadTable(ex_->hosp, &hosp_);
    service->LoadTable(ex_->ins, &ins_);
    return service;
  }

  AttrSet Set(const char* csv) {
    AttrSet out;
    for (const char* c = csv; *c != '\0'; ++c) {
      out.Insert(ex_->catalog.attrs().Find(std::string(1, *c)));
    }
    return out;
  }

  std::unique_ptr<PaperExample> ex_;
  PricingTable prices_;
  Topology topo_;
  Table hosp_, ins_;
};

// ---------------------------------------------------------------- epochs ---

TEST_F(ServiceTest, PolicyEpochAdvancesOnEveryMutation) {
  uint64_t e0 = ex_->policy->epoch();
  ASSERT_TRUE(ex_->policy->RevokeAny(ex_->ins).ok());
  EXPECT_GT(ex_->policy->epoch(), e0);
  uint64_t e1 = ex_->policy->epoch();
  ASSERT_TRUE(ex_->policy->GrantAny(ex_->ins, {}, Set("P")).ok());
  EXPECT_GT(ex_->policy->epoch(), e1);
  uint64_t e2 = ex_->policy->epoch();
  ASSERT_TRUE(ex_->policy->Revoke(ex_->hosp, ex_->Z).ok());
  EXPECT_GT(ex_->policy->epoch(), e2);
  // Failed mutations leave the epoch alone.
  uint64_t e3 = ex_->policy->epoch();
  EXPECT_FALSE(ex_->policy->Revoke(ex_->hosp, ex_->Z).ok());
  EXPECT_EQ(ex_->policy->epoch(), e3);
  // Assignment replaces the whole rule set: the epoch must advance past
  // both histories so cached plans keyed against the old rules can never
  // be served under the new ones.
  Policy replacement(&ex_->catalog, &ex_->subjects);
  *ex_->policy = std::move(replacement);
  EXPECT_GT(ex_->policy->epoch(), e3);
  Policy copy_source(&ex_->catalog, &ex_->subjects);
  uint64_t e4 = ex_->policy->epoch();
  *ex_->policy = copy_source;
  EXPECT_GT(ex_->policy->epoch(), e4);
}

TEST_F(ServiceTest, CatalogVersionAdvancesOnAddRelation) {
  uint64_t v0 = ex_->catalog.version();
  ASSERT_TRUE(ex_->catalog
                  .AddRelation("Extra",
                               {{"E1", DataType::kInt64}},
                               ex_->H, 10)
                  .ok());
  EXPECT_GT(ex_->catalog.version(), v0);
}

TEST_F(ServiceTest, AuthorizationSeesRelationsAddedAfterViewMemoization) {
  // Build the memoized view snapshot, then grow the catalog. The new
  // relation's attributes must take part in the Def 4.1 conditions — a
  // stale grantable domain would silently exclude them, flipping deny
  // into allow for ungranted subjects.
  (void)ex_->policy->PlainView(ex_->U);
  auto rel = ex_->catalog.AddRelation("Extra4", {{"E4", DataType::kInt64}},
                                      ex_->H, 5);
  ASSERT_TRUE(rel.ok());
  AttrSet e4;
  e4.Insert(ex_->catalog.attrs().Find("E4"));
  RelationProfile profile = RelationProfile::ForBase(e4);
  EXPECT_FALSE(ex_->policy->IsAuthorized(ex_->U, profile))
      << "ungranted attribute of a freshly added relation authorized";
  ASSERT_TRUE(ex_->policy->Grant(*rel, ex_->U, e4, {}).ok());
  EXPECT_TRUE(ex_->policy->IsAuthorized(ex_->U, profile));
}

// ----------------------------------------------------------- cache paths ---

TEST_F(ServiceTest, WarmHitReturnsIdenticalResultAndCountsAsHit) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  auto cold = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->stats.cache, CacheOutcome::kMiss);
  ASSERT_EQ(cold->table.num_rows(), 1u);  // tpa group, avg 160 > 100

  auto warm = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->stats.cache, CacheOutcome::kHit);
  ExpectTablesIdentical(cold->table, warm->table, "warm vs cold");
  EXPECT_EQ(warm->stats.transfer_bytes, cold->stats.transfer_bytes);

  ServiceMetrics m = service->Metrics();
  EXPECT_EQ(m.queries, 2u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_entries, 1u);
  EXPECT_DOUBLE_EQ(m.hit_rate, 0.5);
}

TEST_F(ServiceTest, TextualVariantsShareOneCacheEntry) {
  auto service = MakeService();
  auto session = service->OpenSession("U");
  ASSERT_TRUE(session.ok());

  auto a = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(a.ok());
  // Same statement: scrambled case, extra whitespace.
  auto b = service->ExecuteSql(
      "SELECT T ,  avg ( P )\n  FROM Hosp JOIN Ins ON S = C\n"
      "  WHERE D = 'stroke' GROUP BY T HAVING avg(P) > 100",
      *session);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->stats.cache, CacheOutcome::kHit);
  ExpectTablesIdentical(a->table, b->table, "variant");
  EXPECT_EQ(service->CacheEntries(), 1u);
}

TEST_F(ServiceTest, PreparedStatementSkipsReparseAndHitsCache) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  auto stmt = service->Prepare(kPaperSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE(stmt->ast, nullptr);

  auto first = service->Execute(*stmt, *session);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.cache, CacheOutcome::kMiss);
  auto second = service->Execute(*stmt, *session);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache, CacheOutcome::kHit);

  // Prepared and ad-hoc text land on the same entry.
  auto adhoc = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(adhoc.ok());
  EXPECT_EQ(adhoc->stats.cache, CacheOutcome::kHit);

  EXPECT_FALSE(service->Prepare("select from where").ok());
  EXPECT_FALSE(service->Execute(StatementHandle{}, *session).ok());
}

TEST_F(ServiceTest, DistinctSubjectsGetDistinctEntries) {
  auto service = MakeService();
  auto user = service->OpenSession(ex_->U);
  auto hospital = service->OpenSession(ex_->H);
  ASSERT_TRUE(user.ok());
  ASSERT_TRUE(hospital.ok());

  // Same statement, different issuer: assignments are optimized per query
  // subject (delivery costs differ), so the cache must not cross subjects.
  const std::string sql = "select S, D from Hosp where D = 'stroke'";
  auto r_user = service->ExecuteSql(sql, *user);
  ASSERT_TRUE(r_user.ok()) << r_user.status().ToString();
  auto r_hosp = service->ExecuteSql(sql, *hospital);
  ASSERT_TRUE(r_hosp.ok()) << r_hosp.status().ToString();
  EXPECT_EQ(r_hosp->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(service->CacheEntries(), 2u);
}

// ------------------------------------------- policy-epoch invalidation ---

TEST_F(ServiceTest, PolicyChangeInvalidatesCachedPlans) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  auto cold = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(cold.ok());
  auto warm = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->stats.cache, CacheOutcome::kHit);

  // Any policy mutation — here a revocation elsewhere in the policy — bumps
  // the epoch, so the same statement re-plans instead of reusing the cached
  // assignment.
  ASSERT_TRUE(ex_->policy->Revoke(ex_->hosp, ex_->Z).ok());
  auto after = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->stats.cache, CacheOutcome::kMiss);
  EXPECT_GT(after->stats.policy_epoch, warm->stats.policy_epoch);
  ExpectTablesIdentical(cold->table, after->table, "post-grant replan");
}

TEST_F(ServiceTest, StaleAuthorizationExecutionIsImpossible) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  // Warm the cache: U is fully authorized, the query serves from cache.
  auto cold = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->stats.cache, CacheOutcome::kHit);
  uint64_t hits_before = service->Metrics().cache_hits;

  // Revoke every authorization U holds on Ins (its explicit rule and the
  // relation's `any` fallback). The cached plan decrypts avg(P) for U —
  // executing it would leak plaintext premiums to a now-unauthorized subject.
  ASSERT_TRUE(ex_->policy->Revoke(ex_->ins, ex_->U).ok());
  ASSERT_TRUE(ex_->policy->RevokeAny(ex_->ins).ok());

  // The service must fail the query outright — not serve the stale plan.
  auto revoked = service->ExecuteSql(kPaperSql, *session);
  ASSERT_FALSE(revoked.ok());
  EXPECT_EQ(revoked.status().code(), StatusCode::kUnauthorized)
      << revoked.status().ToString();
  EXPECT_EQ(service->Metrics().cache_hits, hits_before)
      << "the stale cached plan was served after revocation";

  // Re-granting restores service under a fresh epoch and fresh plan, with
  // results identical to the pre-revocation ones.
  ASSERT_TRUE(ex_->policy->Grant(ex_->ins, ex_->U, Set("CP"), {}).ok());
  auto regranted = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(regranted.ok()) << regranted.status().ToString();
  EXPECT_EQ(regranted->stats.cache, CacheOutcome::kMiss);
  ExpectTablesIdentical(cold->table, regranted->table, "post-regrant");
}

TEST_F(ServiceTest, CatalogChangeInvalidatesCachedPlans) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(service->ExecuteSql(kPaperSql, *session).ok());

  ASSERT_TRUE(ex_->catalog
                  .AddRelation("Extra2", {{"E2", DataType::kInt64}}, ex_->H, 1)
                  .ok());
  auto after = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.cache, CacheOutcome::kMiss);
}

// ------------------------------------------------ concurrent execution ---

TEST_F(ServiceTest, WarmResultsIdenticalToColdUnderConcurrency) {
  for (size_t threads : {1u, 2u, 8u}) {
    ServiceConfig config;
    config.exec_threads = threads;
    config.batch_size = 2;  // 4-row example spans multiple batches
    auto service = MakeService(config);
    auto session = service->OpenSession(ex_->U);
    ASSERT_TRUE(session.ok());

    auto cold = service->ExecuteSql(kPaperSql, *session);
    ASSERT_TRUE(cold.ok()) << "threads=" << threads << ": "
                           << cold.status().ToString();
    ASSERT_EQ(cold->stats.cache, CacheOutcome::kMiss);

    constexpr int kClients = 4;
    constexpr int kRepsPerClient = 6;
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    std::mutex results_mu;
    std::vector<Table> results;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        auto my_session = service->OpenSession(ex_->U);
        if (!my_session.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kRepsPerClient; ++i) {
          auto warm = service->ExecuteSql(kPaperSql, *my_session);
          if (!warm.ok() || warm->stats.cache != CacheOutcome::kHit) {
            failures.fetch_add(1);
            return;
          }
          std::lock_guard<std::mutex> lock(results_mu);
          results.push_back(std::move(warm->table));
        }
      });
    }
    for (auto& t : clients) t.join();
    ASSERT_EQ(failures.load(), 0) << "threads=" << threads;
    ASSERT_EQ(results.size(), size_t{kClients * kRepsPerClient});
    for (const Table& warm : results) {
      ExpectTablesIdentical(cold->table, warm, "concurrent warm vs cold");
    }
  }
}

TEST_F(ServiceTest, ConcurrentPolicyMutationDuringServingIsSafe) {
  // A mutator thread churns the policy (revoking/re-granting a provider's
  // rule, bumping the epoch each time) while client threads serve the same
  // statement. Every request must either serve a correct fresh-epoch result
  // or re-plan — never crash, deadlock, or serve under a retired epoch key.
  ServiceConfig config;
  config.exec_threads = 2;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto cold = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  std::thread mutator([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(ex_->policy->Revoke(ex_->hosp, ex_->Z).ok());
      ASSERT_TRUE(
          ex_->policy->Grant(ex_->hosp, ex_->Z, Set("ST"), Set("D")).ok());
    }
  });
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  std::mutex results_mu;
  std::vector<Table> results;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto my_session = service->OpenSession(ex_->U);
      for (int i = 0; i < 10; ++i) {
        auto r = service->ExecuteSql(kPaperSql, *my_session);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        std::lock_guard<std::mutex> lock(results_mu);
        results.push_back(std::move(r->table));
      }
    });
  }
  for (auto& t : clients) t.join();
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
  for (const Table& t : results) {
    ExpectTablesIdentical(cold->table, t, "during policy churn");
  }
  // After the churn settles, serving proceeds under the final epoch.
  auto after = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(after.ok());
  ExpectTablesIdentical(cold->table, after->table, "post churn");
}

TEST_F(ServiceTest, ConcurrentCountStarPlanningIsSafe) {
  // count(*) makes the binder intern a synthetic output attribute into the
  // shared AttrRegistry; concurrent cold planning of distinct count
  // statements must be race-free (the registry is reader/writer locked).
  ServiceConfig config;
  config.exec_threads = 2;
  auto service = MakeService(config);
  const std::string statements[] = {
      "select D, count(*) from Hosp group by D",
      "select T, count(*) as treated from Hosp group by T",
      "select D, count(*) as n from Hosp where D = 'stroke' group by D",
      "select B, count(*) as born from Hosp group by B",
  };
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      auto session = service->OpenSession(ex_->H);  // H sees all of Hosp
      for (int i = 0; i < 4; ++i) {
        auto r = service->ExecuteSql(statements[(c + i) % 4], *session);
        if (!r.ok() || r->table.num_rows() == 0) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServiceTest, AdmissionControlBoundsInFlightExecutes) {
  ServiceConfig config;
  config.max_in_flight = 2;
  config.exec_threads = 2;
  auto service = MakeService(config);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto session = service->OpenSession(ex_->U);
      for (int i = 0; i < 4; ++i) {
        auto r = service->ExecuteSql(kPaperSql, *session);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceMetrics m = service->Metrics();
  EXPECT_LE(m.in_flight_peak, 2u);
  EXPECT_EQ(m.queries, uint64_t{kClients * 4});
}

TEST_F(ServiceTest, ExecuteWithoutSessionFails) {
  auto service = MakeService();
  auto r = service->ExecuteSql(kPaperSql, Session{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(service->OpenSession("nobody").ok());
}

// ------------------------------------------------------- LRU + shards ---

TEST_F(ServiceTest, LruEvictionRespectsCapacity) {
  ServiceConfig config;
  config.cache_shards = 1;
  config.cache_capacity_per_shard = 2;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  const std::string q1 = "select S, D from Hosp where D = 'stroke'";
  const std::string q2 = "select S, D from Hosp where D = 'flu'";
  const std::string q3 = "select S, T from Hosp where T = 'tpa'";
  ASSERT_TRUE(service->ExecuteSql(q1, *session).ok());
  ASSERT_TRUE(service->ExecuteSql(q2, *session).ok());
  ASSERT_TRUE(service->ExecuteSql(q3, *session).ok());  // evicts q1

  ServiceMetrics m = service->Metrics();
  EXPECT_LE(m.cache_entries, 2u);
  EXPECT_GE(m.cache_evictions, 1u);

  auto again = service->ExecuteSql(q1, *session);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache, CacheOutcome::kMiss);
}

TEST(ShardedCacheTest, LruOrderAndStats) {
  ShardedLruCache<int, int> cache(/*num_shards=*/1, /*capacity_per_shard=*/2);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.PutIfAbsent(1, std::make_shared<int>(10));
  cache.PutIfAbsent(2, std::make_shared<int>(20));
  ASSERT_NE(cache.Get(1), nullptr);           // 1 becomes MRU
  cache.PutIfAbsent(3, std::make_shared<int>(30));  // evicts 2 (LRU)
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(3), 30);

  // PutIfAbsent keeps the first value on a duplicate insert.
  auto canonical = cache.PutIfAbsent(1, std::make_shared<int>(99));
  EXPECT_EQ(*canonical, 10);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ShardedCacheTest, ConcurrentMixedLoadIsSafe) {
  ShardedLruCache<int, int> cache(/*num_shards=*/4, /*capacity_per_shard=*/8);
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&cache, &mismatches, w] {
      for (int i = 0; i < 500; ++i) {
        int key = (w * 7 + i) % 64;
        auto hit = cache.Get(key);
        if (hit == nullptr) {
          hit = cache.PutIfAbsent(key, std::make_shared<int>(key * 3));
        }
        if (*hit != key * 3) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------- normalize + metrics ---

TEST(NormalizeSqlTest, CanonicalizesWhitespaceKeywordsAndNumbers) {
  auto a = NormalizeSql(
      "select T, avg(P) from Hosp where P > 100 group by T");
  auto b = NormalizeSql(
      "SELECT   T ,\n avg ( P )\tFROM Hosp WHERE P > 100 GROUP BY T");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Numeric spelling canonicalizes within a token type; doubles stay
  // doubles so the normalized text re-lexes identically.
  EXPECT_EQ(*NormalizeSql("select S from Hosp where P > 100.50"),
            *NormalizeSql("select S from Hosp where P > 100.5"));
  EXPECT_NE(*NormalizeSql("select S from Hosp where P > 100.0"),
            *NormalizeSql("select S from Hosp where P > 100"));
  // Identifier case is preserved (names resolve case-sensitively).
  auto c = NormalizeSql("select T from hosp");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*c, *NormalizeSql("select T from Hosp"));
  // String literals survive verbatim.
  auto d = NormalizeSql("select S from Hosp where D = 'stroke'");
  ASSERT_TRUE(d.ok());
  EXPECT_NE(d->find("'stroke'"), std::string::npos);
  EXPECT_FALSE(NormalizeSql("select 'unterminated").ok());
}

TEST(NormalizeSqlTest, OversizedLiteralsErrorInsteadOfAborting) {
  // Untrusted serving-path SQL: out-of-range literals must come back as
  // Status errors, never as exceptions or undefined casts.
  auto huge_int =
      NormalizeSql("select S from Hosp where P < 99999999999999999999");
  EXPECT_FALSE(huge_int.ok());
  EXPECT_EQ(huge_int.status().code(), StatusCode::kInvalidArgument);
  // A huge *decimal* fits in a double; it normalizes without any
  // out-of-int64-range cast, in plain-decimal form (the lexer has no
  // exponent syntax) — and the normalized text must re-parse.
  auto huge_dbl =
      NormalizeSql("select S from Hosp where P < 100000000000000000000.5");
  ASSERT_TRUE(huge_dbl.ok()) << huge_dbl.status().ToString();
  EXPECT_EQ(huge_dbl->find("e+"), std::string::npos) << *huge_dbl;
  EXPECT_TRUE(ParseSelect(*huge_dbl).ok()) << *huge_dbl;
  auto tiny_dbl = NormalizeSql("select S from Hosp where P < 0.00001");
  ASSERT_TRUE(tiny_dbl.ok());
  EXPECT_NE(tiny_dbl->find("0.00001"), std::string::npos) << *tiny_dbl;
  EXPECT_TRUE(ParseSelect(*tiny_dbl).ok()) << *tiny_dbl;
  EXPECT_FALSE(
      NormalizeSql("select S from Hosp where P < 1" + std::string(400, '0'))
          .ok());
}

TEST(LatencyHistogramTest, QuantilesAreOrderedAndApproximate) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-5);  // 10us .. 10ms
  EXPECT_EQ(h.Count(), 1000u);
  double p50 = h.Quantile(0.50), p95 = h.Quantile(0.95),
         p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 5e-3, 2e-3);
  EXPECT_NEAR(p99, 9.9e-3, 3e-3);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(LatencyHistogramTest, ResolvesSubMillisecondLatencies) {
  // Regression: with the old [1 µs, 64 s) range and 4 sub-buckets/octave,
  // a 200 ns observation fell into the underflow bucket and quantiles came
  // back as bucket-0 interpolations (up to 1 µs — 400% off). Warm-cache
  // hits live exactly in this sub-millisecond regime.
  LatencyHistogram fast;
  for (int i = 0; i < 100; ++i) fast.Record(2e-7);
  EXPECT_NEAR(fast.Quantile(0.5), 2e-7, 0.4e-7);

  LatencyHistogram warm;
  for (int i = 0; i < 100; ++i) warm.Record(5e-5);
  EXPECT_NEAR(warm.Quantile(0.5), 5e-5, 0.5e-5);  // ≤ ~9% bucket error

  // Two sub-millisecond populations a factor 2 apart stay distinguishable.
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.Record(1e-4);
    b.Record(2e-4);
  }
  EXPECT_LT(a.Quantile(0.5) * 1.5, b.Quantile(0.5));
}

TEST_F(ServiceTest, WarmP50StaysBelowColdP50) {
  // Regression for the histogram bucket range: warm hits (no planning) must
  // report a p50 strictly below the cold p50, and as a real value — not a
  // sub-resolution artifact rounded toward zero.
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(service->ExecuteSql(kPaperSql, *session).ok());  // cold
  for (int i = 0; i < 32; ++i) {
    auto warm = service->ExecuteSql(kPaperSql, *session);
    ASSERT_TRUE(warm.ok());
    ASSERT_EQ(warm->stats.cache, CacheOutcome::kHit);
  }
  ServiceMetrics m = service->Metrics();
  EXPECT_GT(m.hit_p50_ms, 0.0);
  EXPECT_LT(m.hit_p50_ms, m.miss_p50_ms);
}

TEST_F(ServiceTest, MetricsJsonExposesServingCounters) {
  auto service = MakeService();
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(service->ExecuteSql(kPaperSql, *session).ok());
  ASSERT_TRUE(service->ExecuteSql(kPaperSql, *session).ok());

  std::string json = service->MetricsJson();
  for (const char* key :
       {"\"queries\":2", "\"cache_hits\":1", "\"cache_misses\":1",
        "\"hit_rate\":0.5", "\"total_p50_ms\":", "\"miss_p50_ms\":",
        "\"transfer_bytes\":", "\"failovers\":0",
        "\"failover_retransfer_bytes\":0", "\"failover_p50_ms\":",
        "\"ops\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }

  // Per-operator counters: both executions ran base scans and projections
  // through the engine, so the ops object reports them with nonzero time
  // and row volumes.
  ServiceMetrics m = service->Metrics();
  const OpCounterSnapshot& base = m.ops.of(OpKind::kBase);
  EXPECT_GT(base.calls, 0u);
  EXPECT_GT(base.rows_out, 0u);
  const OpCounterSnapshot& project = m.ops.of(OpKind::kProject);
  EXPECT_GT(project.calls, 0u);
  EXPECT_GT(project.rows_in, 0u);
  EXPECT_NE(json.find("\"base\":{\"calls\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace mpq

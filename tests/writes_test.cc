// Write-path tests: MVCC snapshot isolation of the TableStore, write
// statement execution and authorization through the service, plan-cache
// invalidation across writes (a cached plan must never serve rows of a
// superseded snapshot), MRV counter semantics (invariant total >= 0,
// rollback, balance/adjust), and a concurrent-writer differential test
// against a serial oracle: the same set of statements applied by 1, 2, and
// 8 writer threads must converge to the bit-identical store state the
// serial application produces.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "exec/mrv.h"
#include "exec/table_store.h"
#include "exec/write_executor.h"
#include "net/pricing.h"
#include "net/topology.h"
#include "paper_example.h"
#include "service/query_service.h"
#include "sql/parser.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

// ---- MRV counter unit tests ------------------------------------------------

TEST(MrvCounterTest, AddSubTotal) {
  MrvCounter c(100, 8, /*seed=*/7);
  EXPECT_EQ(c.Total(), 100);
  EXPECT_EQ(c.num_records(), 8u);
  c.Add(50);
  EXPECT_EQ(c.Total(), 150);
  ASSERT_TRUE(c.Sub(30).ok());
  EXPECT_EQ(c.Total(), 120);
  MrvStats s = c.Stats();
  EXPECT_EQ(s.adds, 1u);
  EXPECT_EQ(s.subs, 1u);
  EXPECT_EQ(s.sub_failures, 0u);
}

TEST(MrvCounterTest, SubInsufficientRollsBack) {
  MrvCounter c(100, 4, /*seed=*/3);
  // Gathers across every record, cannot cover, must restore all of it.
  Status st = c.Sub(101);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Total(), 100);
  EXPECT_EQ(c.Stats().sub_failures, 1u);
  // Exactly the full amount still works.
  ASSERT_TRUE(c.Sub(100).ok());
  EXPECT_EQ(c.Total(), 0);
  EXPECT_EQ(c.Sub(1).code(), StatusCode::kInvalidArgument);
}

TEST(MrvCounterTest, BalanceRedistributes) {
  MrvCounter c(97, 4, /*seed=*/11);
  c.Balance();
  EXPECT_EQ(c.Total(), 97);
  // After balancing, any sub of one fair share completes in one record.
  ASSERT_TRUE(c.Sub(24).ok());
  EXPECT_EQ(c.Total(), 73);
}

TEST(MrvCounterTest, ResizeDrainsDeactivatedRecords) {
  MrvCounter c(64, 8, /*seed=*/5);
  c.Balance();
  c.Resize(2);
  EXPECT_EQ(c.num_records(), 2u);
  EXPECT_EQ(c.Total(), 64);  // nothing stranded in inactive records
  c.Resize(1);
  EXPECT_EQ(c.Total(), 64);
  ASSERT_TRUE(c.Sub(64).ok());
  EXPECT_EQ(c.Total(), 0);
}

TEST(MrvCounterTest, AdjustShrinksWhenSubsWalkManyRecords) {
  MrvCounter c(4, 4, /*seed=*/9);
  c.Balance();  // one unit per record
  ASSERT_TRUE(c.Sub(3).ok());  // walks >= 3 records, no contention
  EXPECT_TRUE(c.AdjustStep());
  EXPECT_EQ(c.num_records(), 2u);
  EXPECT_EQ(c.Stats().shrinks, 1u);
  EXPECT_EQ(c.Total(), 1);
}

TEST(MrvCounterTest, ConcurrentAddSubPreservesTotal) {
  // Per-thread: every Add precedes the matching Sub, so any interleaving
  // keeps the running total >= initial and no sub can fail.
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  MrvCounter c(1000, 16, /*seed=*/1);
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread maintenance([&] {
    while (!stop.load(std::memory_order_acquire)) {
      c.Balance();
      c.AdjustStep();
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &failures] {
      for (int i = 0; i < kOps; ++i) {
        c.Add(5);
        if (!c.Sub(3).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  maintenance.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(c.Total(), 1000 + kThreads * kOps * (5 - 3));
  EXPECT_GE(c.num_records(), 1u);
  EXPECT_LE(c.num_records(), MrvCounter::kMaxRecords);
}

// ---- TableStore snapshot tests ---------------------------------------------

class WritesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
  }

  /// A store seeded with the paper example's data.
  std::unique_ptr<TableStore> MakeStore() {
    auto store = std::make_unique<TableStore>();
    store->Put(ex_->hosp, ex_->HospData());
    store->Put(ex_->ins, ex_->InsData());
    return store;
  }

  std::unique_ptr<QueryService> MakeService(TableStore* store,
                                            ServiceConfig config = {}) {
    config.store = store;
    return std::make_unique<QueryService>(&ex_->catalog, &ex_->subjects,
                                          ex_->policy.get(), &prices_, &topo_,
                                          config);
  }

  std::unique_ptr<PaperExample> ex_;
  PricingTable prices_;
  Topology topo_;
};

TEST_F(WritesTest, SnapshotIsolation) {
  auto store = MakeStore();
  std::shared_ptr<const Snapshot> before = store->Current();
  const Table* hosp_before = before->Get(ex_->hosp);
  ASSERT_NE(hosp_before, nullptr);
  size_t rows_before = hosp_before->num_rows();

  Result<uint64_t> snap = store->Mutate(ex_->hosp, [](Table* t) {
    t->AddRow({Cell(Value(int64_t{200})), Cell(Value(int64_t{2000})),
               Cell(Value(std::string("flu"))),
               Cell(Value(std::string("rest")))});
    return Status::OK();
  });
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(*snap, before->id);

  // The pinned snapshot still serves the pre-write state.
  EXPECT_EQ(hosp_before->num_rows(), rows_before);
  std::shared_ptr<const Snapshot> after = store->Current();
  EXPECT_EQ(after->id, *snap);
  EXPECT_EQ(after->Get(ex_->hosp)->num_rows(), rows_before + 1);
  // The untouched relation's payload is shared, not copied.
  EXPECT_EQ(before->Get(ex_->ins), after->Get(ex_->ins));
}

TEST_F(WritesTest, FailedMutatePublishesNothing) {
  auto store = MakeStore();
  uint64_t epoch = store->snapshot_epoch();
  Result<uint64_t> r = store->Mutate(ex_->hosp, [](Table* t) {
    t->AddRow({Cell(Value(int64_t{1})), Cell(Value(int64_t{2})),
               Cell(Value(std::string("x"))), Cell(Value(std::string("y")))});
    return Status::InvalidArgument("abort");
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(store->snapshot_epoch(), epoch);
  EXPECT_EQ(store->Current()->Get(ex_->hosp)->num_rows(), 4u);
}

// ---- Write statements through the service ----------------------------------

TEST_F(WritesTest, InsertUpdateDeleteVisibleToQueries) {
  auto store = MakeStore();
  auto service = MakeService(store.get());
  Session h = *service->OpenSession(ex_->H);
  Session u = *service->OpenSession(ex_->U);

  auto count_bulk = [&] {
    auto resp =
        service->ExecuteSql("select S from Hosp where D = 'bulk'", u);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    return resp.ok() ? resp->table.num_rows() : size_t{0};
  };
  EXPECT_EQ(count_bulk(), 0u);

  Result<WriteResult> ins = service->ExecuteWrite(
      "insert into Hosp values (500, 9000, 'bulk', 't0'), "
      "(501, 9000, 'bulk', 't0'), (502, 9001, 'bulk', 't0')",
      h);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->rows_affected, 3u);
  EXPECT_EQ(count_bulk(), 3u);

  Result<WriteResult> upd = service->ExecuteWrite(
      "update Hosp set T = 'u1' where B = 9000", h);
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->rows_affected, 2u);

  Result<WriteResult> del =
      service->ExecuteWrite("delete from Hosp where S = 502", h);
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->rows_affected, 1u);
  EXPECT_EQ(count_bulk(), 2u);
  EXPECT_GT(del->snapshot_id, ins->snapshot_id);

  // Statement-level accounting surfaced in the metrics.
  ServiceMetrics m = service->Metrics();
  EXPECT_EQ(m.writes, 3u);
  EXPECT_EQ(m.write_errors, 0u);
  EXPECT_EQ(m.rows_written, 6u);
  EXPECT_EQ(m.snapshot_epoch, store->snapshot_epoch());
}

TEST_F(WritesTest, WriteAuthorizationUsesPlaintextView) {
  auto store = MakeStore();
  auto service = MakeService(store.get());
  Session u = *service->OpenSession(ex_->U);  // plain SDT on Hosp, no B
  Session i = *service->OpenSession(ex_->I);  // plain B only on Hosp
  Session h = *service->OpenSession(ex_->H);  // plain SBDT on Hosp

  // INSERT writes every column: U lacks plaintext B.
  Result<WriteResult> ins = service->ExecuteWrite(
      "insert into Hosp values (600, 1, 'flu', 'rest')", u);
  EXPECT_EQ(ins.status().code(), StatusCode::kUnauthorized);

  // UPDATE needs only the SET + WHERE attributes: U holds S, D, T plain.
  Result<WriteResult> upd = service->ExecuteWrite(
      "update Hosp set T = 'x' where S = 100", u);
  EXPECT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->rows_affected, 1u);

  // ...but not an UPDATE whose filter reads B.
  Result<WriteResult> upd2 = service->ExecuteWrite(
      "update Hosp set T = 'x' where B = 1970", u);
  EXPECT_EQ(upd2.status().code(), StatusCode::kUnauthorized);

  // DELETE writes the whole row: I sees only B in plaintext.
  Result<WriteResult> del =
      service->ExecuteWrite("delete from Hosp where B = 1970", i);
  EXPECT_EQ(del.status().code(), StatusCode::kUnauthorized);

  // The error counter moved, and the denied statements changed nothing.
  EXPECT_EQ(service->Metrics().write_errors, 3u);
  auto resp = service->ExecuteSql("select S from Hosp where D = 'flu'", h);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->table.num_rows(), 1u);
}

TEST_F(WritesTest, NoStalePlanServedAcrossAWrite) {
  auto store = MakeStore();
  auto service = MakeService(store.get());
  Session h = *service->OpenSession(ex_->H);
  Session u = *service->OpenSession(ex_->U);
  const std::string sql = "select S from Hosp where D = 'stroke'";

  auto r1 = service->ExecuteSql(sql, u);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->stats.cache, CacheOutcome::kMiss);
  auto r2 = service->ExecuteSql(sql, u);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.cache, CacheOutcome::kHit);
  EXPECT_EQ(r2->table.num_rows(), 3u);

  ASSERT_TRUE(service
                  ->ExecuteWrite(
                      "insert into Hosp values (700, 1, 'stroke', 'tpa')", h)
                  .ok());

  // The write advanced the snapshot epoch: the cached plan is unreachable
  // and the re-planned query sees the new row.
  auto r3 = service->ExecuteSql(sql, u);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->stats.cache, CacheOutcome::kMiss);
  EXPECT_EQ(r3->table.num_rows(), 4u);
  EXPECT_GT(r3->stats.snapshot_id, r2->stats.snapshot_id);
}

// ---- MRV counters through the service --------------------------------------

TEST_F(WritesTest, CounterAttachAddSubFlush) {
  auto store = MakeStore();
  auto service = MakeService(store.get());
  Session h = *service->OpenSession(ex_->H);
  Session u = *service->OpenSession(ex_->U);

  ASSERT_TRUE(service->CounterAttach("Hosp", "S", 100, "B", 8, h).ok());
  // Double attach is rejected.
  EXPECT_EQ(service->CounterAttach("Hosp", "S", 100, "B", 8, h).code(),
            StatusCode::kAlreadyExists);
  // U lacks plaintext B: counter updates are authorization-checked.
  EXPECT_EQ(service->CounterAdd("Hosp", "B", 100, 10, u).code(),
            StatusCode::kUnauthorized);

  ASSERT_TRUE(service->CounterAdd("Hosp", "B", 100, 30, h).ok());
  ASSERT_TRUE(service->CounterSub("Hosp", "B", 100, 10, h).ok());
  Result<int64_t> total = service->CounterTotal("Hosp", "B", 100, h);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 1970 + 30 - 10);

  // An oversized sub fails atomically.
  EXPECT_EQ(service->CounterSub("Hosp", "B", 100, 1000000, h).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(*service->CounterTotal("Hosp", "B", 100, h), 1990);

  // UPDATE of an MRV-managed column is routed to the counter API.
  EXPECT_EQ(service
                ->ExecuteWrite("update Hosp set B = 0 where S = 100", h)
                .status()
                .code(),
            StatusCode::kUnsupported);

  // Flush folds the live total into the snapshot-visible cell.
  uint64_t epoch_before = store->snapshot_epoch();
  ASSERT_TRUE(service->FlushCounters().ok());
  EXPECT_GT(store->snapshot_epoch(), epoch_before);
  const Table* hosp = store->Current()->Get(ex_->hosp);
  int b_col = 1;
  bool found = false;
  for (size_t r = 0; r < hosp->num_rows(); ++r) {
    if (hosp->col(0).GetValue(r).AsInt() == 100) {
      EXPECT_EQ(hosp->col(b_col).GetValue(r).AsInt(), 1990);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- Concurrent-writer differential test vs serial oracle ------------------

/// One logical writer program: two 3-row inserts (unique batch tag in B),
/// an update of the first batch, a delete of the second, plus counter
/// traffic. Writers own disjoint key ranges, so programs commute and any
/// interleaving of full statements converges to the serial result.
struct WriterProgram {
  std::vector<std::string> statements;
  int64_t counter_add = 0;
  int64_t counter_sub = 0;
};

WriterProgram MakeProgram(int w) {
  int64_t base = 1000 + 100 * static_cast<int64_t>(w);
  int64_t tag1 = 5000 + 10 * static_cast<int64_t>(w) + 1;
  int64_t tag2 = 5000 + 10 * static_cast<int64_t>(w) + 2;
  WriterProgram p;
  auto row = [&](int64_t s, int64_t tag) {
    return StrFormat("(%lld, %lld, 'bulk', 't0')", (long long)s,
                     (long long)tag);
  };
  p.statements.push_back("insert into Hosp values " + row(base, tag1) + ", " +
                         row(base + 1, tag1) + ", " + row(base + 2, tag1));
  p.statements.push_back("insert into Hosp values " + row(base + 10, tag2) +
                         ", " + row(base + 11, tag2) + ", " +
                         row(base + 12, tag2));
  p.statements.push_back(StrFormat(
      "update Hosp set T = 'u%d' where B = %lld", w, (long long)tag1));
  p.statements.push_back(
      StrFormat("delete from Hosp where B = %lld", (long long)tag2));
  p.counter_add = 1000;
  p.counter_sub = 400;
  return p;
}

/// Canonical store state: every row of every relation rendered and sorted,
/// so physically different but logically identical states compare equal
/// (concurrent inserts append in nondeterministic order).
std::string CanonicalState(const TableStore& store,
                           const std::vector<RelId>& rels) {
  std::string out;
  std::shared_ptr<const Snapshot> snap = store.Current();
  for (RelId rel : rels) {
    const Table* t = snap->Get(rel);
    std::vector<std::string> rows;
    rows.reserve(t->num_rows());
    for (size_t r = 0; r < t->num_rows(); ++r) {
      std::string line;
      for (size_t c = 0; c < t->num_columns(); ++c) {
        line += t->col(c).GetValue(r).ToString();
        line += "|";
      }
      rows.push_back(std::move(line));
    }
    std::sort(rows.begin(), rows.end());
    out += StrFormat("rel %d\n", static_cast<int>(rel));
    for (const std::string& r : rows) out += r + "\n";
  }
  return out;
}

TEST_F(WritesTest, ConcurrentWritersMatchSerialOracle) {
  constexpr int kPrograms = 8;
  std::vector<WriterProgram> programs;
  programs.reserve(kPrograms);
  for (int w = 0; w < kPrograms; ++w) programs.push_back(MakeProgram(w));

  // Serial oracle: one thread applies every program in order.
  std::string oracle;
  {
    auto store = MakeStore();
    auto service = MakeService(store.get());
    Session h = *service->OpenSession(ex_->H);
    ASSERT_TRUE(service->CounterAttach("Hosp", "S", 100, "B", 8, h).ok());
    for (const WriterProgram& p : programs) {
      for (const std::string& sql : p.statements) {
        auto r = service->ExecuteWrite(sql, h);
        ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      }
      ASSERT_TRUE(service->CounterAdd("Hosp", "B", 100, p.counter_add, h).ok());
      ASSERT_TRUE(service->CounterSub("Hosp", "B", 100, p.counter_sub, h).ok());
    }
    ASSERT_TRUE(service->FlushCounters().ok());
    oracle = CanonicalState(*store, {ex_->hosp, ex_->ins});
    ASSERT_FALSE(oracle.empty());
  }

  for (int threads : {1, 2, 8}) {
    auto store = MakeStore();
    auto service = MakeService(store.get());
    Session h = *service->OpenSession(ex_->H);
    Session u = *service->OpenSession(ex_->U);
    ASSERT_TRUE(service->CounterAttach("Hosp", "S", 100, "B", 8, h).ok());

    // A concurrent reader checks statement atomicity on every snapshot it
    // pins: inserts land 3 rows at a time and deletes remove a whole batch,
    // so the 'bulk' row count is a multiple of 3 at every instant.
    std::atomic<bool> stop{false};
    std::atomic<int> atomicity_violations{0};
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto resp =
            service->ExecuteSql("select S from Hosp where D = 'bulk'", u);
        if (resp.ok() && resp->table.num_rows() % 3 != 0) {
          atomicity_violations.fetch_add(1);
        }
      }
    });

    std::vector<std::thread> workers;
    workers.reserve(threads);
    std::atomic<int> errors{0};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Thread t runs programs t, t+threads, t+2*threads, ...
        for (int w = t; w < kPrograms; w += threads) {
          const WriterProgram& p = programs[w];
          for (const std::string& sql : p.statements) {
            if (!service->ExecuteWrite(sql, h).ok()) errors.fetch_add(1);
          }
          if (!service->CounterAdd("Hosp", "B", 100, p.counter_add, h).ok()) {
            errors.fetch_add(1);
          }
          if (!service->CounterSub("Hosp", "B", 100, p.counter_sub, h).ok()) {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    ASSERT_EQ(errors.load(), 0) << "threads=" << threads;
    EXPECT_EQ(atomicity_violations.load(), 0) << "threads=" << threads;
    ASSERT_TRUE(service->FlushCounters().ok());
    EXPECT_EQ(CanonicalState(*store, {ex_->hosp, ex_->ins}), oracle)
        << "threads=" << threads;
  }
}

TEST_F(WritesTest, MaintenanceThreadSmoke) {
  auto store = MakeStore();
  ASSERT_TRUE(store->MrvAttach(ex_->hosp, /*key_col=*/0, 100,
                               /*value_col=*/1, 8)
                  .ok());
  store->StartMaintenance(/*period_ms=*/1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->MrvAdd(ex_->hosp, 1, 100, 3).ok());
    ASSERT_TRUE(store->MrvSub(ex_->hosp, 1, 100, 2).ok());
  }
  store->StopMaintenance();
  Result<int64_t> total = store->MrvTotal(ex_->hosp, 1, 100);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 1970 + 50);
  Result<MrvStats> stats = store->MrvStatsFor(ex_->hosp, 1, 100);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->adds, 50u);
  EXPECT_EQ(stats->subs, 50u);
  EXPECT_TRUE(store->MrvCoversColumn(ex_->hosp, 1));
  EXPECT_FALSE(store->MrvCoversColumn(ex_->hosp, 2));
  EXPECT_FALSE(store->MrvCoversColumn(ex_->ins, 1));
}

// ---- Flush vs concurrent counter traffic -----------------------------------

// Hammers FlushCounters from two threads against add-only counter traffic
// while a sampler watches the published cell. Add-only traffic makes the
// live total monotone, so a correctly serialized flush sequence publishes
// non-decreasing cell values; the historical race (totals snapshotted
// outside the writer critical section) let a slow flush overwrite a
// fresher fold with its staler total — the sampler would see the published
// value go backwards, un-publishing committed updates.
TEST_F(WritesTest, FlushVsConcurrentAddsNeverPublishesStaleTotals) {
  auto store = MakeStore();
  ASSERT_TRUE(store->MrvAttach(ex_->hosp, /*key_col=*/0, 100,
                               /*value_col=*/1, 8)
                  .ok());
  // Row of S == 100 in the B column (rows never move: no inserts here).
  // The snapshot must stay pinned while its table is read: a concurrent
  // flush publishing a new snapshot frees the old one otherwise.
  auto published_b = [&]() -> int64_t {
    std::shared_ptr<const Snapshot> pin = store->Current();
    const Table* hosp = pin->Get(ex_->hosp);
    for (size_t r = 0; r < hosp->num_rows(); ++r) {
      if (hosp->col(0).GetValue(r).AsInt() == 100) {
        return hosp->col(1).GetValue(r).AsInt();
      }
    }
    return -1;
  };

  constexpr int kAdders = 4;
  constexpr int kOps = 2000;
  std::atomic<int> add_errors{0};
  std::atomic<int> flush_errors{0};
  std::atomic<int> sampler_violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> flushers;
  for (int f = 0; f < 2; ++f) {
    flushers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!store->FlushCounters().ok()) flush_errors.fetch_add(1);
      }
    });
  }
  std::thread sampler([&] {
    int64_t last = published_b();
    while (!stop.load(std::memory_order_acquire)) {
      int64_t now = published_b();
      if (now < last) sampler_violations.fetch_add(1);
      last = now;
    }
  });
  std::vector<std::thread> adders;
  for (int a = 0; a < kAdders; ++a) {
    adders.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        if (!store->MrvAdd(ex_->hosp, 1, 100, 3).ok()) {
          add_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : adders) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : flushers) t.join();
  sampler.join();

  EXPECT_EQ(add_errors.load(), 0);
  EXPECT_EQ(flush_errors.load(), 0);
  EXPECT_EQ(sampler_violations.load(), 0);
  // Conservation: the live total is exactly seed + all adds, and a final
  // quiescent flush folds precisely that into the cell (no double-fold,
  // no lost updates).
  const int64_t expected = 1970 + int64_t{kAdders} * kOps * 3;
  ASSERT_TRUE(store->FlushCounters().ok());
  EXPECT_EQ(*store->MrvTotal(ex_->hosp, 1, 100), expected);
  EXPECT_EQ(published_b(), expected);
}

// ---- Cold (segment-backed) relations ----------------------------------------

TEST_F(WritesTest, ColdRelationsDecodeLazilyAndWarmOnWrite) {
  auto store = MakeStore();
  const Table* hot = store->Current()->Get(ex_->hosp);
  ASSERT_NE(hot, nullptr);
  const std::string before = hot->ToString(100);
  const size_t rows = hot->num_rows();

  uint64_t epoch = store->snapshot_epoch();
  Result<uint64_t> cold = store->MakeCold(ex_->hosp, /*rows_per_segment=*/2);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(*cold, epoch);

  std::shared_ptr<const Snapshot> snap = store->Current();
  EXPECT_EQ(snap->tables.count(ex_->hosp), 0u);
  const SegmentedTable* seg = snap->GetCold(ex_->hosp);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->total_rows(), rows);
  EXPECT_GE(seg->num_segments(), 2u);
  EXPECT_GT(seg->encoded_bytes(), 0u);

  // Get() decodes lazily and serves the identical table; repeated calls
  // share the memoized decode.
  const Table* back = snap->Get(ex_->hosp);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->ToString(100), before);
  EXPECT_EQ(snap->Get(ex_->hosp), back);

  // Idempotent: re-demoting a cold relation keeps the snapshot as is.
  Result<uint64_t> again = store->MakeCold(ex_->hosp, 2);
  ASSERT_TRUE(again.ok());

  // The untouched relation stayed hot, and unknown relations error.
  EXPECT_NE(store->Current()->tables.count(ex_->ins), 0u);
  EXPECT_FALSE(store->MakeCold(static_cast<RelId>(999), 2).ok());

  // A write warms the relation: the mutation sees the decoded rows and the
  // new version is a plain table again.
  Result<uint64_t> warmed = store->Mutate(ex_->hosp, [](Table* t) {
    t->AddRow({Cell(Value(int64_t{300})), Cell(Value(int64_t{3000})),
               Cell(Value(std::string("flu"))),
               Cell(Value(std::string("rest")))});
    return Status::OK();
  });
  ASSERT_TRUE(warmed.ok()) << warmed.status().ToString();
  std::shared_ptr<const Snapshot> after = store->Current();
  EXPECT_EQ(after->cold.count(ex_->hosp), 0u);
  ASSERT_NE(after->Get(ex_->hosp), nullptr);
  EXPECT_EQ(after->Get(ex_->hosp)->num_rows(), rows + 1);
  // The pinned cold snapshot is unaffected by the warm-up publish.
  EXPECT_EQ(snap->Get(ex_->hosp)->num_rows(), rows);
}

TEST_F(WritesTest, QueriesReadColdRelationsTransparently) {
  auto store = MakeStore();
  auto service = MakeService(store.get());
  Session u = *service->OpenSession(ex_->U);
  const std::string sql = "select S from Hosp where D = 'flu'";

  auto warm_resp = service->ExecuteSql(sql, u);
  ASSERT_TRUE(warm_resp.ok()) << warm_resp.status().ToString();
  ASSERT_GT(warm_resp->table.num_rows(), 0u);
  const std::string warm = warm_resp->table.ToString(100);

  ASSERT_TRUE(store->MakeCold(ex_->hosp, /*rows_per_segment=*/1).ok());
  auto cold_resp = service->ExecuteSql(sql, u);
  ASSERT_TRUE(cold_resp.ok()) << cold_resp.status().ToString();
  EXPECT_EQ(cold_resp->table.ToString(100), warm);
}

}  // namespace
}  // namespace mpq

// Open-loop load harness tests (service/loadgen.h): saturation smoke — the
// CI gate behind bench_service — and the seeded-provider-crash scenario.
// Gates are accounting and correctness only (shed bookkeeping, zero
// mismatches, failovers observed), never wall clock, so they hold on a
// 1-core host.

#include "service/loadgen.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/failover.h"
#include "net/pricing.h"
#include "net/simnet.h"
#include "net/topology.h"
#include "paper_example.h"
#include "profile/propagate.h"
#include "service/query_service.h"
#include "sql/binder.h"
#include "tpch/dbgen.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

constexpr const char* kPaperSql =
    "select T, avg(P) from Hosp join Ins on S = C "
    "where D = 'stroke' group by T having avg(P) > 100";

TEST(LoadGenTest, SaturationSmokeShedsUnderOverload) {
  auto ex = MakePaperExample();
  PricingTable prices = PricingTable::PaperDefaults(ex->subjects);
  Topology topo = Topology::PaperDefaults(ex->subjects);
  Table hosp = ex->HospData();
  Table ins = ex->InsData();
  QueryService service(&ex->catalog, &ex->subjects, ex->policy.get(), &prices,
                       &topo, ServiceConfig{});
  service.LoadTable(ex->hosp, &hosp);
  service.LoadTable(ex->ins, &ins);
  auto session = service.OpenSession(ex->U);
  ASSERT_TRUE(session.ok());

  // Overload on purpose: arrivals far faster than two virtual servers with
  // a two-deep wait queue can drain, so the run must shed — and still never
  // return a wrong or failed result for what it does complete.
  LoadGenConfig lc;
  lc.sessions = 300;
  lc.mean_interarrival_s = 1e-9;
  lc.sigma = 1.5;
  lc.servers = 2;
  lc.queue_cap = 2;
  lc.seed = 41;
  auto rep = RunOpenLoopLoad(&service, *session, {kPaperSql}, lc);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();

  EXPECT_EQ(rep->offered, 300u);
  EXPECT_EQ(rep->completed + rep->shed + rep->errors, rep->offered);
  EXPECT_EQ(rep->mismatches, 0u);
  EXPECT_EQ(rep->errors, 0u);
  EXPECT_GT(rep->completed, 0u);
  EXPECT_GT(rep->shed, 0u);  // the saturation signal CI gates on
  EXPECT_GT(rep->shed_rate, 0.0);
  EXPECT_GE(rep->p99_ms, rep->p50_ms);
  EXPECT_GT(rep->virtual_duration_s, 0.0);
}

TEST(LoadGenTest, DeterministicInSeed) {
  auto ex = MakePaperExample();
  PricingTable prices = PricingTable::PaperDefaults(ex->subjects);
  Topology topo = Topology::PaperDefaults(ex->subjects);
  Table hosp = ex->HospData();
  Table ins = ex->InsData();
  QueryService service(&ex->catalog, &ex->subjects, ex->policy.get(), &prices,
                       &topo, ServiceConfig{});
  service.LoadTable(ex->hosp, &hosp);
  service.LoadTable(ex->ins, &ins);
  auto session = service.OpenSession(ex->U);
  ASSERT_TRUE(session.ok());

  LoadGenConfig lc;
  lc.sessions = 120;
  lc.mean_interarrival_s = 1e-9;
  lc.servers = 2;
  lc.queue_cap = 2;
  lc.seed = 7;
  auto a = RunOpenLoopLoad(&service, *session, {kPaperSql}, lc);
  auto b = RunOpenLoopLoad(&service, *session, {kPaperSql}, lc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The virtual schedule derives from the seed alone: identical shed and
  // completion accounting on both runs (latencies differ — they include
  // measured real service times).
  EXPECT_EQ(a->offered, b->offered);
  EXPECT_EQ(a->shed, b->shed);
  EXPECT_EQ(a->completed, b->completed);
}

TEST(LoadGenTest, CrashScenarioRecoversUnderLoad) {
  // A seeded provider crash stays armed while the open-loop run hammers the
  // service: completions must survive via failover (counted, zero
  // mismatches under length-only ciphertext comparison).
  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/8);
  TpchData db = GenerateTpch(env, /*data_sf=*/5e-5, /*seed=*/17);
  Result<Policy> policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
  ASSERT_TRUE(policy.ok());
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);

  const std::vector<std::string> statements = {
      "select sum(l_extendedprice) from lineitem "
      "where l_shipdate >= 730 and l_shipdate < 1095 "
      "and l_discount >= 0.05 and l_discount <= 0.07 and l_quantity < 24.0",
  };

  SimNet net(&env.subjects);
  net.ConfigureFromTopology(topo, env.subjects, 0);
  ServiceConfig config;
  config.net = &net;
  QueryService service(&env.catalog, &env.subjects, &*policy, &prices, &topo,
                       config);
  for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);
  auto session = service.OpenSession(env.user);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(service.ExecuteSql(statements[0], *session).ok());

  // Probe the statement's minimum-cost assignment for a provider step to
  // kill (the service chooses the same plan over the same inputs).
  int crash_step = -1;
  SubjectId victim = kInvalidSubject;
  {
    auto plan = PlanFromSql(statements[0], env.catalog);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(
        DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{}).ok());
    ASSERT_TRUE(AnnotatePlan(plan->get(), env.catalog).ok());
    SimNet probe_net(&env.subjects);
    FailoverExecutor probe(&env.catalog, &env.subjects, &*policy, &prices,
                           &topo, &probe_net, FailoverConfig{});
    for (const auto& [rel, t] : db.tables) probe.LoadTable(rel, &t);
    auto probed = probe.Execute(plan->get(), env.user);
    ASSERT_TRUE(probed.ok());
    for (const auto& [node_id, subject] :
         probed->assignment.extended.assignment) {
      if (env.subjects.Get(subject).kind == SubjectKind::kProvider) {
        crash_step = node_id;
        victim = subject;
        break;
      }
    }
  }
  ASSERT_NE(victim, kInvalidSubject);
  FaultPlan faults;
  faults.crash_at_step[victim] = crash_step;
  net.SetFaultPlan(faults);

  LoadGenConfig lc;
  lc.sessions = 60;
  lc.mean_interarrival_s = 1e-4;
  lc.servers = 4;
  lc.queue_cap = 64;  // roomy: this test is about recovery, not shedding
  lc.seed = 23;
  lc.strict_enc_compare = false;  // failover re-keys attempts
  lc.on_progress = [&](size_t n) {
    if (n % 10 == 0) net.Restore(victim);  // let the crash re-fire
  };
  auto rep = RunOpenLoopLoad(&service, *session, statements, lc);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();

  EXPECT_EQ(rep->completed + rep->shed + rep->errors, rep->offered);
  EXPECT_EQ(rep->errors, 0u);
  EXPECT_EQ(rep->mismatches, 0u);
  EXPECT_GT(rep->completed, 0u);
  EXPECT_GE(rep->failovers, 1u);
}

}  // namespace
}  // namespace mpq

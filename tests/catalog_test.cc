// Unit tests for the catalog and schema layer.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace mpq {
namespace {

using C = std::pair<std::string, DataType>;

TEST(SchemaTest, IndexAndAttrs) {
  Catalog cat;
  RelId r = *cat.AddRelation(
      "R", {C{"a", DataType::kInt64}, C{"b", DataType::kString}}, 0, 10);
  const Schema& s = cat.Get(r).schema;
  EXPECT_EQ(s.num_columns(), 2u);
  AttrId a = cat.attrs().Find("a");
  AttrId b = cat.attrs().Find("b");
  EXPECT_EQ(s.IndexOf(a), 0);
  EXPECT_EQ(s.IndexOf(b), 1);
  EXPECT_EQ(s.IndexOf(999), -1);
  EXPECT_EQ(s.Attrs(), (AttrSet{a, b}));
  EXPECT_EQ(s.ColumnFor(b).type, DataType::kString);
}

TEST(SchemaTest, AvgTupleBytesByType) {
  Catalog cat;
  RelId r = *cat.AddRelation(
      "R",
      {C{"i", DataType::kInt64}, C{"d", DataType::kDouble},
       C{"s", DataType::kString}},
      0, 10);
  EXPECT_DOUBLE_EQ(cat.Get(r).schema.AvgTupleBytes(), 8 + 8 + 16);
}

TEST(CatalogTest, DuplicateRelationRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R", {C{"a", DataType::kInt64}}, 0, 1).ok());
  auto dup = cat.AddRelation("R", {C{"b", DataType::kInt64}}, 0, 1);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DuplicateAttributeRejectedAcrossRelations) {
  // Attribute names are global in the paper's model.
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R1", {C{"a", DataType::kInt64}}, 0, 1).ok());
  auto dup = cat.AddRelation("R2", {C{"a", DataType::kInt64}}, 0, 1);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RelationOfMapsAttributesToOwners) {
  Catalog cat;
  RelId r1 = *cat.AddRelation("R1", {C{"a", DataType::kInt64}}, 3, 1);
  RelId r2 = *cat.AddRelation("R2", {C{"b", DataType::kInt64}}, 4, 1);
  EXPECT_EQ(cat.RelationOf(cat.attrs().Find("a")), r1);
  EXPECT_EQ(cat.RelationOf(cat.attrs().Find("b")), r2);
  EXPECT_EQ(cat.RelationOf(12345), kInvalidRel);
  EXPECT_EQ(cat.Get(r1).owner, 3u);
  EXPECT_EQ(cat.Get(r2).owner, 4u);
}

TEST(CatalogTest, FindRelation) {
  Catalog cat;
  RelId r = *cat.AddRelation("Hosp", {C{"S", DataType::kInt64}}, 0, 42);
  EXPECT_EQ(cat.FindRelation("Hosp"), r);
  EXPECT_EQ(cat.FindRelation("nope"), kInvalidRel);
  EXPECT_DOUBLE_EQ(cat.Get(r).base_rows, 42);
}

TEST(SubjectRegistryTest, RegisterAndLookup) {
  SubjectRegistry reg;
  SubjectId u = *reg.Register("U", SubjectKind::kUser);
  SubjectId p = *reg.Register("P1", SubjectKind::kProvider);
  EXPECT_EQ(reg.Find("U"), u);
  EXPECT_EQ(reg.Find("missing"), kInvalidSubject);
  EXPECT_EQ(reg.Name(p), "P1");
  EXPECT_EQ(reg.Get(u).kind, SubjectKind::kUser);
  EXPECT_EQ(reg.Register("U", SubjectKind::kUser).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.OfKind(SubjectKind::kProvider),
            (std::vector<SubjectId>{p}));
}

TEST(SubjectRegistryTest, KindNames) {
  EXPECT_STREQ(SubjectKindName(SubjectKind::kUser), "user");
  EXPECT_STREQ(SubjectKindName(SubjectKind::kAuthority), "authority");
  EXPECT_STREQ(SubjectKindName(SubjectKind::kProvider), "provider");
}

}  // namespace
}  // namespace mpq

// Async QueryService tests: the ExecuteAsync path must produce responses
// bit-identical to synchronous Execute (same rows, same metrics counters) at
// several thread counts, support cancellation before the first morsel runs,
// shed deterministically at the queue-depth cap, and coalesce concurrent
// same-snapshot scans across queries (the shared-scan acceptance check).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/pricing.h"
#include "net/topology.h"
#include "paper_example.h"
#include "service/metrics.h"
#include "service/query_service.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

void ExpectCellsIdentical(const Cell& a, const Cell& b, const char* where) {
  ASSERT_EQ(a.is_plain(), b.is_plain()) << where;
  if (a.is_plain()) {
    EXPECT_EQ(a.plain(), b.plain()) << where;
  } else {
    EXPECT_EQ(a.enc(), b.enc()) << where;
  }
}

void ExpectTablesIdentical(const Table& a, const Table& b, const char* where) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << where;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << where;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    EXPECT_EQ(a.columns()[i].attr, b.columns()[i].attr) << where;
    EXPECT_EQ(a.columns()[i].encrypted, b.columns()[i].encrypted) << where;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ExpectCellsIdentical(a.row(r)[c], b.row(r)[c], where);
    }
  }
}

constexpr const char* kPaperSql =
    "select T, avg(P) from Hosp join Ins on S = C "
    "where D = 'stroke' group by T having avg(P) > 100";

class ServiceAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    hosp_ = ex_->HospData();
    ins_ = ex_->InsData();
  }

  std::unique_ptr<QueryService> MakeService(ServiceConfig config = {}) {
    auto service = std::make_unique<QueryService>(
        &ex_->catalog, &ex_->subjects, ex_->policy.get(), &prices_, &topo_,
        config);
    service->LoadTable(ex_->hosp, &hosp_);
    service->LoadTable(ex_->ins, &ins_);
    return service;
  }

  std::unique_ptr<PaperExample> ex_;
  PricingTable prices_;
  Topology topo_;
  Table hosp_, ins_;
};

TEST_F(ServiceAsyncTest, AsyncMatchesSyncBitIdentical) {
  // The async path is the same execution under a future: at 1, 2, and 8
  // workers the response rows must be byte-identical to the synchronous
  // ones and the serving counters must advance exactly the same way.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ServiceConfig config;
    config.exec_threads = threads;
    auto service = MakeService(config);
    auto session = service->OpenSession(ex_->U);
    ASSERT_TRUE(session.ok());
    auto stmt = service->Prepare(kPaperSql);
    ASSERT_TRUE(stmt.ok());

    auto sync = service->Execute(*stmt, *session);
    ASSERT_TRUE(sync.ok()) << "threads " << threads;
    ServiceMetrics m0 = service->Metrics();

    auto query = service->ExecuteAsync(*stmt, *session);
    ASSERT_TRUE(query.ok()) << "threads " << threads;
    const Result<QueryResponse>& async = (*query)->Wait();
    ASSERT_TRUE(async.ok()) << "threads " << threads;
    EXPECT_TRUE((*query)->Done());

    ExpectTablesIdentical(async->table, sync->table, "async vs sync");
    EXPECT_EQ(async->stats.result_rows, sync->stats.result_rows);
    EXPECT_EQ(async->stats.cache, CacheOutcome::kHit);

    ServiceMetrics m1 = service->Metrics();
    EXPECT_EQ(m1.queries - m0.queries, 1u) << "threads " << threads;
    EXPECT_EQ(m1.async_queries - m0.async_queries, 1u);
    EXPECT_EQ(m1.rows_returned - m0.rows_returned, sync->stats.result_rows);
    EXPECT_EQ(m1.errors, m0.errors);
    EXPECT_EQ(m1.sheds, m0.sheds);
  }
}

TEST_F(ServiceAsyncTest, ManyAsyncQueriesAllIdentical) {
  ServiceConfig config;
  config.exec_threads = 2;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto stmt = service->Prepare(kPaperSql);
  ASSERT_TRUE(stmt.ok());
  auto reference = service->Execute(*stmt, *session);
  ASSERT_TRUE(reference.ok());

  std::vector<std::shared_ptr<AsyncQuery>> queries;
  for (int i = 0; i < 16; ++i) {
    auto q = service->ExecuteAsync(*stmt, *session);
    ASSERT_TRUE(q.ok()) << "submission " << i;
    queries.push_back(*q);
  }
  for (auto& q : queries) {
    const Result<QueryResponse>& r = q->Wait();
    ASSERT_TRUE(r.ok());
    ExpectTablesIdentical(r->table, reference->table, "async burst");
  }
  EXPECT_EQ(service->Metrics().async_queries, 16u);
}

TEST_F(ServiceAsyncTest, CancelBeforeFirstMorsel) {
  ServiceConfig config;
  config.exec_threads = 1;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto stmt = service->Prepare(kPaperSql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(service->Execute(*stmt, *session).ok());  // warm the cache
  ServiceMetrics m0 = service->Metrics();

  // Park the only worker so the submitted query cannot start.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(service->pool()->Submit([&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }));
  while (!entered.load()) std::this_thread::yield();

  auto query = service->ExecuteAsync(*stmt, *session);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE((*query)->Done());
  // Still queued behind the gate: cancellation must win, and no part of the
  // query may execute afterwards.
  EXPECT_TRUE((*query)->Cancel());
  EXPECT_FALSE((*query)->Cancel());  // already cancelled
  release.store(true);

  const Result<QueryResponse>& r = (*query)->Wait();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  // Drain the pool task so the cancelled counter settles.
  while (service->Metrics().cancelled == m0.cancelled) {
    std::this_thread::yield();
  }
  ServiceMetrics m1 = service->Metrics();
  EXPECT_EQ(m1.cancelled - m0.cancelled, 1u);
  EXPECT_EQ(m1.queries, m0.queries);  // never executed
  EXPECT_EQ(m1.errors, m0.errors);
}

TEST_F(ServiceAsyncTest, CancelAfterCompletionFails) {
  ServiceConfig config;
  config.exec_threads = 1;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto query = service->ExecuteSqlAsync(kPaperSql, *session);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Wait().ok());
  EXPECT_FALSE((*query)->Cancel());
  EXPECT_EQ(service->Metrics().cancelled, 0u);
}

TEST_F(ServiceAsyncTest, ShedsAtQueueDepthCap) {
  ServiceConfig config;
  config.exec_threads = 1;
  config.max_in_flight = 1;
  config.max_queue_depth = 2;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto stmt = service->Prepare(kPaperSql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(service->Execute(*stmt, *session).ok());

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(service->pool()->Submit([&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }));
  while (!entered.load()) std::this_thread::yield();

  // With the worker parked, submissions queue until the depth cap and the
  // rest shed with kUnavailable, nothing enqueued.
  std::vector<std::shared_ptr<AsyncQuery>> accepted;
  size_t shed = 0;
  for (int i = 0; i < 5; ++i) {
    auto q = service->ExecuteAsync(*stmt, *session);
    if (q.ok()) {
      accepted.push_back(*q);
    } else {
      EXPECT_EQ(q.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(accepted.size(), 2u);
  EXPECT_EQ(shed, 3u);
  release.store(true);
  for (auto& q : accepted) EXPECT_TRUE(q->Wait().ok());

  ServiceMetrics m = service->Metrics();
  EXPECT_EQ(m.sheds, 3u);
  EXPECT_EQ(m.async_queries, 2u);
  EXPECT_GE(m.queue_depth_peak, 2u);
}

TEST_F(ServiceAsyncTest, SharedScanCoalescesConcurrentQueries) {
  // The acceptance check: two concurrent same-snapshot queries over the same
  // base table must coalesce onto one in-flight scan, observable through the
  // service's scan_leads / scan_attaches / scan_shared_batches counters, and
  // both must still return the exact reference rows. The statement touches
  // only D and T — plaintext-visible to every subject under the example's
  // GrantAny — so the select's input stays the zero-copy base snapshot
  // whose payload pointer is the shared-scan key. (The full paper query
  // encrypts S on the fly before its selection, and per-run nonces make
  // that input physically distinct per query: correctly never coalesced.)
  auto service = MakeService();  // inline execution: threads are the callers
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto stmt = service->Prepare("select D, T from Hosp where D = 'stroke'");
  ASSERT_TRUE(stmt.ok());
  auto reference = service->Execute(*stmt, *session);
  ASSERT_TRUE(reference.ok());
  ServiceMetrics m0 = service->Metrics();

  // Hold the next leader before its first batch claim so the second query
  // deterministically finds the scan in flight and attaches.
  service->shared_scans()->HoldNewScansForTesting();
  Result<QueryResponse> r1 = Status::Internal("unset");
  Result<QueryResponse> r2 = Status::Internal("unset");
  std::thread q1([&] { r1 = service->Execute(*stmt, *session); });
  while (service->Metrics().scan_leads == m0.scan_leads) {
    std::this_thread::yield();
  }
  std::thread q2([&] { r2 = service->Execute(*stmt, *session); });
  while (service->Metrics().scan_attaches == m0.scan_attaches) {
    std::this_thread::yield();
  }
  service->shared_scans()->ReleaseHeldScansForTesting();
  q1.join();
  q2.join();

  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ExpectTablesIdentical(r1->table, reference->table, "coalesced leader");
  ExpectTablesIdentical(r2->table, reference->table, "coalesced attacher");

  ServiceMetrics m1 = service->Metrics();
  EXPECT_GE(m1.scan_attaches - m0.scan_attaches, 1u);
  EXPECT_GE(m1.scan_shared_batches - m0.scan_shared_batches, 1u);
}

}  // namespace
}  // namespace mpq

// Tests for the TPC-H substrate: schema/env, dbgen integrity, the 22 query
// shapes, authorization scenarios, and end-to-end optimize+execute runs.

#include <gtest/gtest.h>

#include "assign/assignment.h"
#include "exec/executor.h"
#include "profile/propagate.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<TpchEnv>(MakeTpchEnv(1.0, 3));
  }
  std::unique_ptr<TpchEnv> env_;
};

TEST_F(TpchTest, EnvHasEightRelationsAndSubjects) {
  EXPECT_EQ(env_->catalog.num_relations(), 8u);
  EXPECT_EQ(env_->subjects.size(), 6u);  // U, 2 authorities, 3 providers
  EXPECT_EQ(env_->catalog.Get(env_->lineitem).owner, env_->auth_supp);
  EXPECT_EQ(env_->catalog.Get(env_->orders).owner, env_->auth_cust);
  EXPECT_EQ(env_->catalog.Get(env_->supplier).owner, env_->auth_supp);
}

TEST_F(TpchTest, CardinalitiesFollowSf) {
  EXPECT_DOUBLE_EQ(TpchRows(*env_, env_->region, 1.0), 5);
  EXPECT_DOUBLE_EQ(TpchRows(*env_, env_->lineitem, 1.0), 6000000);
  EXPECT_DOUBLE_EQ(TpchRows(*env_, env_->orders, 0.001), 1500);
  // base_rows in the catalog match SF1.
  EXPECT_DOUBLE_EQ(env_->catalog.Get(env_->customer).base_rows, 150000);
}

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, BuildsValidatesAndAnnotates) {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  auto plan = BuildTpchQuery(GetParam(), env);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{}).ok());
  ASSERT_TRUE(AnnotatePlan(plan->get(), env.catalog).ok());
  EXPECT_GE(CountNodes(plan->get()), 3);
}

TEST_P(TpchQueryTest, HasCandidatesUnderUAPenc) {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  auto plan = BuildTpchQuery(GetParam(), env);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{}).ok());
  auto policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto cp = ComputeCandidates(plan->get(), *policy);
  EXPECT_TRUE(cp.ok()) << "Q" << GetParam() << ": " << cp.status().ToString();
}

TEST_P(TpchQueryTest, ExecutesOnTinyData) {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  auto plan = BuildTpchQuery(GetParam(), env);
  ASSERT_TRUE(plan.ok());
  TpchData db = GenerateTpch(env, /*data_sf=*/0.0005, /*seed=*/7);
  KeyRing ring;
  CryptoPlan crypto;
  ExecContext ctx;
  ctx.catalog = &env.catalog;
  for (const auto& [rel, table] : db.tables) ctx.base_tables[rel] = &table;
  ctx.keyring = &ring;
  ctx.crypto = &crypto;
  Result<Table> t = ExecutePlan(plan->get(), &ctx);
  ASSERT_TRUE(t.ok()) << "Q" << GetParam() << ": " << t.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest, ::testing::Range(1, 23));

TEST_F(TpchTest, InvalidQueryNumberRejected) {
  EXPECT_FALSE(BuildTpchQuery(0, *env_).ok());
  EXPECT_FALSE(BuildTpchQuery(23, *env_).ok());
  EXPECT_EQ(NumTpchQueries(), 22);
}

TEST_F(TpchTest, DbgenReferentialIntegrity) {
  TpchData db = GenerateTpch(*env_, 0.001, 42);
  const Table& orders = db.at(env_->orders);
  const Table& cust = db.at(env_->customer);
  // Every o_custkey exists in customer.
  int64_t max_cust = static_cast<int64_t>(cust.num_rows());
  int ck = orders.ColIndex(env_->catalog.attrs().Find("o_custkey"));
  ASSERT_GE(ck, 0);
  for (size_t r = 0; r < orders.num_rows(); ++r) {
    int64_t v = orders.row(r)[static_cast<size_t>(ck)].plain().AsInt();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, max_cust);
  }
}

TEST_F(TpchTest, DbgenDeterministicPerSeed) {
  TpchData a = GenerateTpch(*env_, 0.0005, 9);
  TpchData b = GenerateTpch(*env_, 0.0005, 9);
  EXPECT_EQ(a.at(env_->lineitem).num_rows(), b.at(env_->lineitem).num_rows());
  EXPECT_EQ(a.at(env_->lineitem).row(0)[5].plain(),
            b.at(env_->lineitem).row(0)[5].plain());
  TpchData c = GenerateTpch(*env_, 0.0005, 10);
  EXPECT_NE(a.at(env_->lineitem).row(0)[5].plain(),
            c.at(env_->lineitem).row(0)[5].plain());
}

TEST_F(TpchTest, ScenarioPoliciesDiffer) {
  auto ua = MakeScenarioPolicy(*env_, AuthScenario::kUA);
  auto enc = MakeScenarioPolicy(*env_, AuthScenario::kUAPenc);
  auto mix = MakeScenarioPolicy(*env_, AuthScenario::kUAPmix);
  ASSERT_TRUE(ua.ok() && enc.ok() && mix.ok());
  SubjectId p1 = env_->providers[0];
  // UA: provider sees nothing.
  EXPECT_TRUE(ua->PlainView(p1).empty());
  EXPECT_TRUE(ua->EncView(p1).empty());
  // UAPenc: provider sees everything encrypted only.
  EXPECT_TRUE(enc->PlainView(p1).empty());
  EXPECT_EQ(enc->EncView(p1).size(),
            env_->catalog.attrs().size());
  // UAPmix: provider sees roughly half plaintext.
  EXPECT_GT(mix->PlainView(p1).size(), 0u);
  EXPECT_GT(mix->EncView(p1).size(), 0u);
  EXPECT_EQ(mix->PlainView(p1).size() + mix->EncView(p1).size(),
            env_->catalog.attrs().size());
}

TEST_F(TpchTest, ScenarioCostOrderingOnQ6) {
  // The headline property: UAPmix ≤ UAPenc ≤ UA on a representative query.
  auto plan = BuildTpchQuery(6, *env_);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(
      DerivePlaintextNeeds(plan->get(), env_->catalog, SchemeCaps{}).ok());
  PricingTable prices = MakeScenarioPricing(*env_);
  Topology topo = MakeScenarioTopology(*env_);
  SchemeMap schemes = AnalyzeSchemes(plan->get(), env_->catalog, SchemeCaps{});
  CostModel cm(&env_->catalog, &prices, &topo, &schemes);

  double costs[3];
  AuthScenario scenarios[] = {AuthScenario::kUA, AuthScenario::kUAPenc,
                              AuthScenario::kUAPmix};
  for (int i = 0; i < 3; ++i) {
    auto policy = MakeScenarioPolicy(*env_, scenarios[i]);
    ASSERT_TRUE(policy.ok());
    auto cp = ComputeCandidates(plan->get(), *policy);
    ASSERT_TRUE(cp.ok()) << cp.status().ToString();
    AssignmentOptimizer opt(&*policy, &cm);
    auto r = opt.Optimize(plan->get(), *cp, env_->user);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    costs[i] = r->exact_cost.total_usd();
  }
  EXPECT_LE(costs[1], costs[0]);  // UAPenc ≤ UA
  EXPECT_LE(costs[2], costs[1] * 1.001);  // UAPmix ≤ UAPenc (tolerance)
}

TEST_F(TpchTest, UdfQueryBuildsAndExecutes) {
  auto plan = BuildUdfQuery(*env_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  TpchData db = GenerateTpch(*env_, 0.0005, 3);
  KeyRing ring;
  CryptoPlan crypto;
  ExecContext ctx;
  ctx.catalog = &env_->catalog;
  for (const auto& [rel, table] : db.tables) ctx.base_tables[rel] = &table;
  ctx.keyring = &ring;
  ctx.crypto = &crypto;
  Result<Table> t = ExecutePlan(plan->get(), &ctx);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GT(t->num_rows(), 0u);
}

}  // namespace
}  // namespace mpq

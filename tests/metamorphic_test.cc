// Metamorphic properties of the execution engine: for seeded random
// catalogs/data, semantically equivalent plan pairs must produce identical
// results — filter conjunction splitting, projection/selection reordering,
// join commutativity. Every equivalence is checked through the row-path
// plaintext oracle AND the columnar engine at 1/2/8 worker threads, so a
// violation isolates either an operator-rewrite bug (engine diverges from
// oracle) or a genuine algebra bug (both diverge from the equivalence).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan_builder.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "testing/random_plan.h"
#include "testing/reference_exec.h"

namespace mpq {
namespace {

constexpr uint64_t kNumSeeds = 100;

class MetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pools_.push_back(std::make_unique<ThreadPool>(1));
    pools_.push_back(std::make_unique<ThreadPool>(2));
    pools_.push_back(std::make_unique<ThreadPool>(8));
  }

  struct Env {
    RandomScenario sc;
    std::map<RelId, Table> data;
  };

  Result<Env> MakeEnv(uint64_t seed) {
    Env env;
    MPQ_ASSIGN_OR_RETURN(env.sc, MakeRandomScenario(seed));
    env.data = MakeRandomData(env.sc, seed ^ 0xc01u);
    return env;
  }

  /// Oracle rows for `plan`.
  std::vector<std::string> Oracle(const Env& env, const PlanNode* plan) {
    ReferenceExecutor oracle(env.sc.catalog.get());
    for (const auto& [rel, t] : env.data) oracle.LoadTable(rel, &t);
    Result<Table> t = oracle.Run(plan);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? CanonicalRows(*t) : std::vector<std::string>{};
  }

  /// Columnar-engine rows for `plan` on `pool`.
  std::vector<std::string> Engine(const Env& env, const PlanNode* plan,
                                  ThreadPool* pool) {
    ExecContext ctx;
    ctx.catalog = env.sc.catalog.get();
    for (const auto& [rel, t] : env.data) ctx.base_tables[rel] = &t;
    ctx.pool = pool;
    Result<Table> t = ExecutePlan(plan, &ctx);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? CanonicalRows(*t) : std::vector<std::string>{};
  }

  /// Asserts plan equivalence `a` ≡ `b` across the oracle and the engine at
  /// every pool size.
  void ExpectEquivalent(const Env& env, const PlanNode* a, const PlanNode* b,
                        uint64_t seed, const char* what) {
    std::vector<std::string> want = Oracle(env, a);
    EXPECT_EQ(Oracle(env, b), want)
        << what << " diverges in the oracle (seed " << seed << ")";
    for (auto& pool : pools_) {
      EXPECT_EQ(Engine(env, a, pool.get()), want)
          << what << ": engine(lhs) diverges at " << pool->size()
          << " threads (seed " << seed << ")";
      EXPECT_EQ(Engine(env, b, pool.get()), want)
          << what << ": engine(rhs) diverges at " << pool->size()
          << " threads (seed " << seed << ")";
    }
  }

  /// Int attributes of a relation, in schema order.
  static std::vector<AttrId> IntAttrs(const RelationDef& rel) {
    std::vector<AttrId> out;
    for (const Column& c : rel.schema.columns()) {
      if (c.type == DataType::kInt64) out.push_back(c.attr);
    }
    return out;
  }

  static CmpOp RandomOp(Rng& rng) {
    switch (rng.Uniform(6)) {
      case 0:
        return CmpOp::kEq;
      case 1:
        return CmpOp::kNe;
      case 2:
        return CmpOp::kLt;
      case 3:
        return CmpOp::kLe;
      case 4:
        return CmpOp::kGt;
      default:
        return CmpOp::kGe;
    }
  }

  PlanPtr Fin(const Env& env, PlanPtr p) {
    Result<PlanPtr> r = FinishPlan(std::move(p), *env.sc.catalog);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : nullptr;
  }

  std::vector<std::unique_ptr<ThreadPool>> pools_;
};

TEST_F(MetamorphicTest, FilterConjunctionSplitsAndCommutes) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    Result<Env> env = MakeEnv(seed);
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    Rng rng(seed * 131);
    const auto& rels = env->sc.catalog->relations();
    const RelationDef& rel = rels[rng.Uniform(rels.size())];
    std::vector<AttrId> ints = IntAttrs(rel);
    ASSERT_GE(ints.size(), 2u) << "seed " << seed;
    Predicate p = Predicate::AttrValue(ints[rng.Uniform(ints.size())],
                                       RandomOp(rng), Value(rng.Range(0, 40)));
    Predicate q = Predicate::AttrValue(ints[rng.Uniform(ints.size())],
                                       RandomOp(rng), Value(rng.Range(0, 40)));
    // σ_{p∧q}(R) ≡ σ_q(σ_p(R)) ≡ σ_p(σ_q(R)).
    PlanPtr both = Fin(*env, Select(Base(rel.id), {p, q}));
    PlanPtr chained = Fin(*env, Select(Select(Base(rel.id), {p}), {q}));
    PlanPtr flipped = Fin(*env, Select(Select(Base(rel.id), {q}), {p}));
    ASSERT_TRUE(both && chained && flipped);
    ExpectEquivalent(*env, both.get(), chained.get(), seed,
                     "filter(p AND q) vs filter(q) . filter(p)");
    ExpectEquivalent(*env, chained.get(), flipped.get(), seed,
                     "filter chain commutation");
  }
}

TEST_F(MetamorphicTest, ProjectionReorderAroundSelection) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    Result<Env> env = MakeEnv(seed ^ 0x5eed);
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    Rng rng(seed * 733 + 1);
    const auto& rels = env->sc.catalog->relations();
    const RelationDef& rel = rels[rng.Uniform(rels.size())];
    std::vector<AttrId> ints = IntAttrs(rel);
    ASSERT_GE(ints.size(), 2u) << "seed " << seed;
    AttrId pred_attr = ints[rng.Uniform(ints.size())];
    Predicate p =
        Predicate::AttrValue(pred_attr, RandomOp(rng), Value(rng.Range(0, 40)));
    // A projection set containing the predicate attribute plus one more.
    AttrSet keep;
    keep.Insert(pred_attr);
    keep.Insert(ints[rng.Uniform(ints.size())]);
    keep.Insert(rel.schema.columns().front().attr);
    // π_A(σ_p(R)) ≡ σ_p(π_A(R)) when p's attributes ⊆ A.
    PlanPtr pa = Fin(*env, Project(Select(Base(rel.id), {p}), keep));
    PlanPtr pb = Fin(*env, Select(Project(Base(rel.id), keep), {p}));
    ASSERT_TRUE(pa && pb);
    ExpectEquivalent(*env, pa.get(), pb.get(), seed,
                     "projection/selection reorder");
  }
}

TEST_F(MetamorphicTest, JoinCommutes) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    Result<Env> env = MakeEnv(seed ^ 0x10b5);
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    Rng rng(seed * 977 + 5);
    const auto& rels = env->sc.catalog->relations();
    ASSERT_GE(rels.size(), 2u);
    size_t i = rng.Uniform(rels.size());
    size_t j = rng.Uniform(rels.size() - 1);
    if (j >= i) ++j;
    std::vector<AttrId> li = IntAttrs(rels[i]), rj = IntAttrs(rels[j]);
    ASSERT_FALSE(li.empty());
    ASSERT_FALSE(rj.empty());
    Predicate eq = Predicate::AttrAttr(li[rng.Uniform(li.size())], CmpOp::kEq,
                                       rj[rng.Uniform(rj.size())]);
    // R ⋈ S ≡ S ⋈ R (CanonicalRows is column-order insensitive).
    PlanPtr lr = Fin(*env, Join(Base(rels[i].id), Base(rels[j].id), {eq}));
    PlanPtr rl = Fin(*env, Join(Base(rels[j].id), Base(rels[i].id), {eq}));
    ASSERT_TRUE(lr && rl);
    ExpectEquivalent(*env, lr.get(), rl.get(), seed, "join commutativity");
  }
}

}  // namespace
}  // namespace mpq
// Observability tests: LatencyHistogram quantile accuracy against a
// sorted-sample oracle, MetricsRegistry concurrent-update safety and
// Prometheus exposition grammar, the slow-query log, deterministic trace and
// span ids at every thread count, traced ≡ untraced bit-identity through
// QueryService, EXPLAIN ANALYZE predicted-vs-observed byte calibration on a
// TPC-H query, and failover attribution in traces and reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/flat_hash.h"
#include "exec/failover.h"
#include "net/pricing.h"
#include "net/simnet.h"
#include "net/topology.h"
#include "obs/clock.h"
#include "obs/explain.h"
#include "obs/metrics_registry.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "paper_example.h"
#include "service/query_service.h"
#include "testing/reference_exec.h"
#include "tpch/dbgen.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

using testing::MakePaperExample;
using testing::PaperExample;

// ---------------------------------------------------------------- helpers ---

/// Quote-aware structural check: braces/brackets balance and depth never
/// goes negative. Not a full parser, but catches truncated or interleaved
/// writer output.
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

/// Asserts every line of a Prometheus text exposition is either a
/// `# HELP name text`, a `# TYPE name counter|gauge|summary`, or a
/// `series value` sample where `series` is `name` or `name{label="v",…}`
/// and `value` parses as a double.
void ExpectPrometheusGrammar(const std::string& text) {
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "exposition not newline-terminated";
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "line " << line_no << ": " << line;
      if (line.rfind("# TYPE ", 0) == 0) {
        EXPECT_TRUE(line.find(" counter") != std::string::npos ||
                    line.find(" gauge") != std::string::npos ||
                    line.find(" summary") != std::string::npos)
            << "line " << line_no << ": " << line;
      }
      continue;
    }
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << "line " << line_no << ": " << line;
    std::string series = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    ASSERT_FALSE(series.empty()) << "line " << line_no;
    // Series: bare name, or name{...} with balanced quotes.
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << "line " << line_no << ": " << line;
    }
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "line " << line_no << ": bad value " << value;
  }
}

const SpanArg* FindArg(const SpanRecord& r, const char* key) {
  for (const SpanArg& a : r.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

/// The scheduling-independent shape of a trace: every span's identity and
/// topology, without timestamps or measured annotations.
std::set<std::tuple<uint64_t, uint64_t, std::string, std::string, int, int>>
SpanShape(const QueryTrace& trace) {
  std::set<std::tuple<uint64_t, uint64_t, std::string, std::string, int, int>>
      shape;
  for (const SpanRecord& r : trace.Spans()) {
    shape.emplace(r.span_id, r.parent_id, r.name, r.cat, r.node_id, r.track);
  }
  return shape;
}

// ------------------------------------------------------ LatencyHistogram ---

TEST(LatencyHistogramTest, QuantilesTrackSortedSampleOracle) {
  // Log-uniform samples over [1 us, 10 s] — five decades, the serving
  // range. The histogram's log-spaced buckets (8 per octave) bound the
  // relative quantile error at ~9%; interpolation should keep estimates
  // well inside 12% of the exact sorted-sample quantile.
  std::mt19937_64 rng(20250809);
  std::uniform_real_distribution<double> u(std::log(1e-6), std::log(10.0));
  constexpr size_t kN = 20000;
  LatencyHistogram h;
  std::vector<double> samples;
  samples.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    double s = std::exp(u(rng));
    samples.push_back(s);
    h.Record(s);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(h.Count(), kN);
  double sum = 0;
  for (double s : samples) sum += s;
  EXPECT_NEAR(h.SumSeconds(), sum, sum * 1e-6 + kN * 1e-9);
  for (double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    auto rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(kN)));
    double oracle = samples[rank - 1];
    double got = h.Quantile(p);
    EXPECT_NEAR(got, oracle, oracle * 0.12)
        << "p=" << p << " oracle=" << oracle << " got=" << got;
  }
}

TEST(LatencyHistogramTest, BoundaryValuesLandInTheirOwnBucket) {
  // A value sitting exactly on a bucket boundary 1e-8 * 2^(k/8) belongs to
  // the bucket whose lower bound it is. Recomputing the bucket through
  // log2 is not exact — for about half the boundaries the index truncated
  // one bucket short, so the quantile estimate of boundary-valued samples
  // fell BELOW the recorded value. The estimate must lie in [v, v*2^(1/8)).
  for (int k = 1; k <= 260; k += 3) {
    const double v = 1e-8 * std::exp2(static_cast<double>(k) / 8.0);
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Record(v);
    const double q = h.Quantile(0.5);
    EXPECT_GE(q, v) << "boundary k=" << k
                    << ": estimate fell into the previous bucket";
    EXPECT_LT(q, v * std::exp2(1.0 / 8.0) * (1 + 1e-12)) << "boundary k=" << k;
  }
}

TEST(LatencyHistogramTest, SingleSampleEstimateIsTheBucketMidpointNotItsEdge) {
  // One observation just above a bucket's lower bound: upper-edge
  // interpolation (the historical rank/count fraction) reported the full
  // bucket width (~9.1%) as error; the midpoint rule halves the worst case.
  for (int k : {40, 81, 122, 163, 204}) {
    const double v = 1e-8 * std::exp2((static_cast<double>(k) + 0.01) / 8.0);
    LatencyHistogram h;
    h.Record(v);
    for (double p : {0.01, 0.5, 1.0}) {
      const double q = h.Quantile(p);
      EXPECT_NEAR(q, v, v * 0.05) << "k=" << k << " p=" << p;
    }
  }
}

TEST(LatencyHistogramTest, EdgeCasesUnderflowOverflowEmptyReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Record(0.0);                    // underflow bucket
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_LE(h.Quantile(1.0), 1e-8);
  h.Record(1000.0);  // over the ~86 s range: clamps to the top bucket
  EXPECT_GE(h.Quantile(1.0), 80.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

// ------------------------------------------------------- MetricsRegistry ---

TEST(MetricsRegistryTest, InstrumentsAreStablePerNameAndLabels) {
  MetricsRegistry reg;
  MetricCounter* a = reg.GetCounter("t_total", "help a", "k=\"1\"");
  MetricCounter* b = reg.GetCounter("t_total", "ignored", "k=\"1\"");
  MetricCounter* c = reg.GetCounter("t_total", "ignored", "k=\"2\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc(3);
  c->Inc();
  MetricGauge* g = reg.GetGauge("t_gauge", "g", "");
  g->Set(2.5);
  LatencyHistogram* h = reg.GetHistogram("t_seconds", "h", "");
  h->Record(0.001);
  std::string text = reg.TextExposition();
  // First registration's help wins; later empty/conflicting help is ignored.
  EXPECT_NE(text.find("# HELP t_total help a"), std::string::npos) << text;
  EXPECT_NE(text.find("t_total{k=\"1\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("t_total{k=\"2\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("t_gauge 2.5"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE t_seconds summary"), std::string::npos) << text;
  EXPECT_NE(text.find("t_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count 1"), std::string::npos) << text;
  ExpectPrometheusGrammar(text);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesRegistrationAndExposition) {
  // TSan target (this suite is labeled quick): registration races with
  // updates, collector installation, and exposition from many threads.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<uint64_t> expositions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string label =
          std::string("shard=\"") + (t % 2 == 0 ? "even" : "odd") + "\"";
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("c_total", "c", label)->Inc();
        reg.GetHistogram("h_seconds", "h", "")->Record(1e-4 * (t + 1));
        reg.GetGauge("g", "g", "")->Set(static_cast<double>(i));
        if (i % 500 == 0) {
          reg.AddCollector([](std::string* out) {
            out->append("# HELP x_total x\n# TYPE x_total counter\n");
            out->append("x_total 1\n");
          });
          std::string text = reg.TextExposition();
          if (!text.empty()) expositions.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t even = reg.GetCounter("c_total", "c", "shard=\"even\"")->Value();
  uint64_t odd = reg.GetCounter("c_total", "c", "shard=\"odd\"")->Value();
  EXPECT_EQ(even + odd, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("h_seconds", "h", "")->Count(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_GT(expositions.load(), 0u);
  ExpectPrometheusGrammar(reg.TextExposition());
}

// --------------------------------------------------------- SlowQueryLog ---

TEST(SlowQueryLogTest, RecordsAggregatesEvictsAndSerializes) {
  SlowQueryLog log(/*threshold_s=*/0.01, /*capacity=*/2);
  log.Record(1, "select a", 0.005);  // under threshold: ignored
  EXPECT_EQ(log.size(), 0u);
  log.Record(1, "select a", 0.02, /*trace_id=*/111);
  log.Record(1, "select a", 0.05, /*trace_id=*/222);
  log.Record(1, "select a", 0.03, /*trace_id=*/333);
  log.Record(2, "select b", 0.10, /*trace_id=*/444);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  // Worst offender first.
  EXPECT_EQ(entries[0].digest, 2u);
  EXPECT_EQ(entries[1].digest, 1u);
  EXPECT_EQ(entries[1].count, 3u);
  EXPECT_DOUBLE_EQ(entries[1].max_s, 0.05);
  EXPECT_DOUBLE_EQ(entries[1].last_s, 0.03);
  EXPECT_DOUBLE_EQ(entries[1].total_s, 0.10);
  EXPECT_EQ(entries[1].trace_id, 222u);  // trace of the slowest occurrence
  // Full at capacity 2: a slower statement evicts the least-bad entry, a
  // faster one bounces off.
  log.Record(3, "select c", 0.04);
  EXPECT_EQ(log.size(), 2u);
  log.Record(4, "select d", 0.20);
  entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].digest, 4u);
  EXPECT_EQ(entries[1].digest, 2u);
  std::string json = log.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"threshold_s\""), std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  EXPECT_NE(json.find("select d"), std::string::npos);
}

// ----------------------------------------------------------- trace core ---

TEST(TraceTest, IdsAreDeterministicFunctionsOfTheirInputs) {
  EXPECT_EQ(MakeTraceId(1, 42, 0), MakeTraceId(1, 42, 0));
  EXPECT_NE(MakeTraceId(1, 42, 0), MakeTraceId(1, 42, 1));
  EXPECT_NE(MakeTraceId(1, 42, 0), MakeTraceId(2, 42, 0));
  EXPECT_NE(MakeTraceId(1, 42, 0), MakeTraceId(1, 43, 0));
  EXPECT_NE(MakeTraceId(0, 0, 0), 0u);
}

TEST(TraceTest, SpansPinTimestampsFromTheInjectedClockAndExportChrome) {
  VirtualClock clock;
  clock.SetNs(5000);
  QueryTrace trace(MakeTraceId(7, 9, 0), &clock);
  Span root = trace.StartSpan("query", "exec");
  clock.AdvanceNs(2000);
  Span child = trace.StartSpan("op", "op", root.id(), /*node_id=*/3);
  child.AnnInt("rows_out", 17);
  child.AnnDouble("selectivity", 0.5);
  child.AnnStr("note", "x");
  clock.AdvanceNs(1000);
  child.End();
  clock.AdvanceNs(1000);
  root.End();
  auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: root first.
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].start_ns, 5000u);
  EXPECT_EQ(spans[0].end_ns, 9000u);
  EXPECT_EQ(spans[1].name, "op");
  EXPECT_EQ(spans[1].start_ns, 7000u);
  EXPECT_EQ(spans[1].end_ns, 8000u);
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_EQ(spans[1].node_id, 3);
  ASSERT_NE(FindArg(spans[1], "rows_out"), nullptr);
  EXPECT_EQ(FindArg(spans[1], "rows_out")->i, 17);
  // Same inputs → same span ids (a fresh trace reproduces them).
  QueryTrace again(MakeTraceId(7, 9, 0), &clock);
  Span root2 = again.StartSpan("query", "exec");
  EXPECT_EQ(root2.id(), spans[0].span_id);
  root2.End();
  std::string chrome = trace.ToChromeJson();
  EXPECT_TRUE(JsonBalanced(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"query\""), std::string::npos);
}

TEST(TraceTest, InertSpanIsANoOpAndDisabledTracerHandsOutNothing) {
  Span inert;
  EXPECT_FALSE(static_cast<bool>(inert));
  EXPECT_EQ(inert.id(), 0u);
  inert.AnnInt("k", 1);  // must not crash
  inert.End();
  Tracer off(TraceConfig{}, nullptr, nullptr);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.MaybeStart(1, 2), nullptr);
  TraceConfig sampled;
  sampled.enabled = true;
  sampled.sample_every = 3;
  TraceSink sink(8);
  Tracer tracer(sampled, nullptr, &sink);
  int traced = 0;
  for (int i = 0; i < 9; ++i) {
    auto t = tracer.MaybeStart(1, 2);
    if (t != nullptr) {
      ++traced;
      tracer.Finish(t);
    }
  }
  EXPECT_EQ(traced, 3);
  EXPECT_EQ(sink.size(), 3u);
}

// ------------------------------------------------- service (paper example) ---

constexpr const char* kPaperSql =
    "select T, avg(P) from Hosp join Ins on S = C "
    "where D = 'stroke' group by T having avg(P) > 100";

class ObsServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakePaperExample();
    prices_ = PricingTable::PaperDefaults(ex_->subjects);
    topo_ = Topology::PaperDefaults(ex_->subjects);
    hosp_ = ex_->HospData();
    ins_ = ex_->InsData();
  }

  std::unique_ptr<QueryService> MakeService(ServiceConfig config = {}) {
    auto service = std::make_unique<QueryService>(
        &ex_->catalog, &ex_->subjects, ex_->policy.get(), &prices_, &topo_,
        config);
    service->LoadTable(ex_->hosp, &hosp_);
    service->LoadTable(ex_->ins, &ins_);
    return service;
  }

  std::unique_ptr<PaperExample> ex_;
  PricingTable prices_;
  Topology topo_;
  Table hosp_, ins_;
};

TEST_F(ObsServiceTest, TracingIsOffByDefaultAndSamplingHonorsTheConfig) {
  auto plain = MakeService();
  auto session = plain->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto r = plain->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trace, nullptr);

  TraceSink sink(8);
  ServiceConfig config;
  config.trace.enabled = true;
  config.trace.sample_every = 2;
  config.trace_sink = &sink;
  auto sampled = MakeService(config);
  auto s2 = sampled->OpenSession(ex_->U);
  ASSERT_TRUE(s2.ok());
  int traced = 0;
  for (int i = 0; i < 4; ++i) {
    auto resp = sampled->ExecuteSql(kPaperSql, *s2);
    ASSERT_TRUE(resp.ok());
    if (resp->trace != nullptr) ++traced;
  }
  EXPECT_EQ(traced, 2);
  EXPECT_EQ(sink.size(), 2u);
}

TEST_F(ObsServiceTest, TracedRunsAreBitIdenticalToUntracedAtEveryThreadCount) {
  // Fresh service instances per run: the runtime's nonce sequence advances
  // per Execute, so only first executions are comparable bit-for-bit.
  std::string reference_wire;
  std::set<std::tuple<uint64_t, uint64_t, std::string, std::string, int, int>>
      reference_shape;
  for (size_t threads : {size_t{0}, size_t{2}, size_t{8}}) {
    ServiceConfig plain_config;
    plain_config.exec_threads = threads;
    auto plain = MakeService(plain_config);
    auto ps = plain->OpenSession(ex_->U);
    ASSERT_TRUE(ps.ok());
    auto pr = plain->ExecuteSql(kPaperSql, *ps);
    ASSERT_TRUE(pr.ok()) << pr.status().ToString();

    ServiceConfig traced_config;
    traced_config.exec_threads = threads;
    traced_config.trace.enabled = true;
    auto traced = MakeService(traced_config);
    auto ts = traced->OpenSession(ex_->U);
    ASSERT_TRUE(ts.ok());
    auto tr = traced->ExecuteSql(kPaperSql, *ts);
    ASSERT_TRUE(tr.ok()) << tr.status().ToString();
    ASSERT_NE(tr->trace, nullptr);

    std::string plain_wire = pr->table.SerializeColumns();
    EXPECT_EQ(plain_wire, tr->table.SerializeColumns())
        << "traced run differs from untraced at " << threads << " threads";
    if (reference_wire.empty()) {
      reference_wire = plain_wire;
      reference_shape = SpanShape(*tr->trace);
    } else {
      EXPECT_EQ(plain_wire, reference_wire)
          << "result differs across thread counts at " << threads;
      // Span ids are PRFs of the plan, not of scheduling: the trace's
      // shape is identical at every thread count.
      EXPECT_EQ(SpanShape(*tr->trace), reference_shape)
          << "trace shape differs at " << threads << " threads";
    }
  }
}

TEST_F(ObsServiceTest, SlowQueryLogAndMetricsTextCoverExecutes) {
  ServiceConfig config;
  config.trace.enabled = true;
  config.slow_query_s = 0.0;  // log everything
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto stmt = service->Prepare(kPaperSql);
  ASSERT_TRUE(stmt.ok());
  auto r = service->Execute(*stmt, *session);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace, nullptr);

  const SlowQueryLog& log = service->slow_queries();
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].digest, HashBytes(stmt->normalized_sql));
  EXPECT_EQ(entries[0].normalized_sql, stmt->normalized_sql);
  EXPECT_EQ(entries[0].trace_id, r->trace->trace_id());
  EXPECT_TRUE(JsonBalanced(log.ToJson()));

  std::string text = service->MetricsText();
  ExpectPrometheusGrammar(text);
  EXPECT_NE(text.find("mpq_queries_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("mpq_query_latency_seconds{outcome=\"total\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
  EXPECT_NE(text.find("mpq_op_calls_total{op=\"base\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mpq_cache_entries"), std::string::npos) << text;
}

// -------------------------------------------------------- failover traces ---

class ObsFailoverTest : public ObsServiceTest {
 protected:
  /// The (dispatch step, provider) pairs of a fault-free traced run,
  /// discovered from the run's own frag spans.
  std::vector<std::pair<int, SubjectId>> ProbeProviderSteps() {
    SimNet clean(&ex_->subjects);
    ServiceConfig config;
    config.net = &clean;
    config.trace.enabled = true;
    auto service = MakeService(config);
    auto session = service->OpenSession(ex_->U);
    if (!session.ok()) return {};
    auto r = service->ExecuteSql(kPaperSql, *session);
    if (!r.ok() || r->trace == nullptr) return {};
    baseline_rows_ = CanonicalRows(r->table);
    std::vector<std::pair<int, SubjectId>> steps;
    for (const SpanRecord& s : r->trace->Spans()) {
      if (s.cat != "frag" || s.node_id < 0) continue;
      auto subject = static_cast<SubjectId>(s.track);
      if (ex_->subjects.Get(subject).kind == SubjectKind::kProvider) {
        steps.emplace_back(s.node_id, subject);
      }
    }
    std::sort(steps.begin(), steps.end());
    return steps;
  }

  std::vector<std::string> baseline_rows_;
};

TEST_F(ObsFailoverTest, CrashRecoveryIsAttributedInTraceAndReport) {
  auto steps = ProbeProviderSteps();
  ASSERT_FALSE(steps.empty())
      << "optimizer routed nothing to providers; test is vacuous";
  auto [crash_step, victim] = steps.front();

  SimNet net(&ex_->subjects);
  FaultPlan faults;
  faults.crash_at_step[victim] = crash_step;
  net.SetFaultPlan(faults);
  TraceSink sink(8);
  ServiceConfig config;
  config.net = &net;
  config.trace.enabled = true;
  config.trace_sink = &sink;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());

  // First execution hits the scheduled crash; EXPLAIN ANALYZE recovers
  // through the failover path and reports against the plan that ran.
  auto report = service->ExplainAnalyzeSql(kPaperSql, *session);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->failovers, 1u);
  EXPECT_GT(report->failover_latency_s, 0.0);
  EXPECT_NE(report->text.find("failover:"), std::string::npos)
      << report->text;
  EXPECT_TRUE(JsonBalanced(report->ToJson()));

  // The trace carries the crash and the recovery attempt.
  ASSERT_GE(sink.size(), 1u);
  auto traces = sink.Traces();
  const QueryTrace& trace = *traces.back();
  auto spans = trace.Spans();
  bool saw_crash = false;
  const SpanRecord* failover_span = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.cat == "frag" && FindArg(s, "crashed") != nullptr) saw_crash = true;
    if (s.cat == "failover") failover_span = &s;
  }
  EXPECT_TRUE(saw_crash) << "no frag span recorded the provider crash";
  ASSERT_NE(failover_span, nullptr) << "no failover span in the trace";
  EXPECT_NE(FindArg(*failover_span, "retransfer_bytes"), nullptr);
  EXPECT_NE(FindArg(*failover_span, "failover_latency_s"), nullptr);

  // The service keeps serving correct results after the crash (re-planned
  // around the dead provider, no further failover needed).
  auto again = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->stats.failovers, 0u);
  EXPECT_EQ(CanonicalRows(again->table), baseline_rows_);
  std::string text = service->MetricsText();
  EXPECT_NE(text.find("mpq_failovers_total"), std::string::npos);
}

TEST_F(ObsFailoverTest, SimNetClockStampsSpansInVirtualTime) {
  SimNet net(&ex_->subjects);
  SimNetClock clock(&net);
  ServiceConfig config;
  config.net = &net;
  config.trace.enabled = true;
  config.trace_clock = &clock;
  auto service = MakeService(config);
  auto session = service->OpenSession(ex_->U);
  ASSERT_TRUE(session.ok());
  auto r = service->ExecuteSql(kPaperSql, *session);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace, nullptr);
  // Every timestamp is the net's accumulated virtual time: bounded by the
  // final virtual clock, monotone within each span.
  uint64_t final_ns = net.VirtualNowNs();
  for (const SpanRecord& s : r->trace->Spans()) {
    EXPECT_LE(s.start_ns, s.end_ns) << s.name;
    EXPECT_LE(s.end_ns, final_ns + 1) << s.name;
  }
}

// ------------------------------------------------------- TPC-H acceptance ---

constexpr const char* kTpchQ3 =
    "select o_orderkey, o_orderdate, o_shippriority, sum(l_extendedprice) "
    "from customer join orders on c_custkey = o_custkey "
    "join lineitem on o_orderkey = l_orderkey "
    "where c_mktsegment = 'BUILDING' and o_orderdate < 1204 "
    "and l_shipdate > 1204 "
    "group by o_orderkey, o_orderdate, o_shippriority";

class ObsTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/8);
    db_ = GenerateTpch(env_, /*data_sf=*/0.002, /*seed=*/17);
    auto policy = MakeScenarioPolicy(env_, AuthScenario::kUAPenc);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::make_unique<Policy>(std::move(*policy));
    prices_ = MakeScenarioPricing(env_);
    topo_ = MakeScenarioTopology(env_);
  }

  std::unique_ptr<QueryService> MakeService(ServiceConfig config = {}) {
    auto service = std::make_unique<QueryService>(
        &env_.catalog, &env_.subjects, policy_.get(), &prices_, &topo_,
        config);
    for (const auto& [rel, t] : db_.tables) service->LoadTable(rel, &t);
    return service;
  }

  TpchEnv env_;
  TpchData db_;
  std::unique_ptr<Policy> policy_;
  PricingTable prices_;
  Topology topo_;
};

TEST_F(ObsTpchTest, TracedQueryCoversTheWholePipelineWithEdgeBytes) {
  ServiceConfig config;
  config.trace.enabled = true;
  auto service = MakeService(config);
  auto session = service->OpenSession(env_.user);
  ASSERT_TRUE(session.ok());
  auto r = service->ExecuteSql(kTpchQ3, *session);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->trace, nullptr);

  auto spans = r->trace->Spans();
  std::set<std::string> names;
  std::set<uint64_t> span_ids;
  size_t roots = 0, frag_spans = 0, op_spans = 0, net_spans = 0;
  for (const SpanRecord& s : spans) {
    names.insert(s.name);
    span_ids.insert(s.span_id);
    if (s.parent_id == 0) ++roots;
    if (s.cat == "frag") ++frag_spans;
    if (s.cat == "op") {
      ++op_spans;
      EXPECT_NE(FindArg(s, "rows_out"), nullptr) << s.name;
      EXPECT_NE(FindArg(s, "wall_ns"), nullptr) << s.name;
    }
    if (s.cat == "net") {
      ++net_spans;
      const SpanArg* bytes = FindArg(s, "bytes");
      ASSERT_NE(bytes, nullptr);
      EXPECT_GT(bytes->i, 0);
      EXPECT_NE(FindArg(s, "from"), nullptr);
      EXPECT_NE(FindArg(s, "to"), nullptr);
    }
  }
  // Front half, cache, dispatch, fragments, operators, merge — the whole
  // pipeline, in one trace.
  for (const char* want : {"parse", "bind", "candidates", "assign", "keys",
                           "cache_probe", "query", "dispatch", "merge"}) {
    EXPECT_TRUE(names.count(want)) << "missing span " << want;
  }
  EXPECT_GT(frag_spans, 0u);
  EXPECT_GT(op_spans, 0u);
  EXPECT_GT(net_spans, 0u) << "no assignee-crossing edge was traced";
  // The span forest is rooted at exactly the one "query" span and every
  // parent id resolves.
  EXPECT_EQ(roots, 1u);
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0) {
      EXPECT_TRUE(span_ids.count(s.parent_id)) << s.name;
    }
  }
}

TEST_F(ObsTpchTest, TracedRunsAreBitIdenticalToUntracedAtEveryThreadCount) {
  std::string reference_wire;
  for (size_t threads : {size_t{0}, size_t{2}, size_t{8}}) {
    ServiceConfig plain_config;
    plain_config.exec_threads = threads;
    auto plain = MakeService(plain_config);
    auto ps = plain->OpenSession(env_.user);
    ASSERT_TRUE(ps.ok());
    auto pr = plain->ExecuteSql(kTpchQ3, *ps);
    ASSERT_TRUE(pr.ok()) << pr.status().ToString();

    ServiceConfig traced_config;
    traced_config.exec_threads = threads;
    traced_config.trace.enabled = true;
    auto traced = MakeService(traced_config);
    auto ts = traced->OpenSession(env_.user);
    ASSERT_TRUE(ts.ok());
    auto tr = traced->ExecuteSql(kTpchQ3, *ts);
    ASSERT_TRUE(tr.ok()) << tr.status().ToString();
    ASSERT_NE(tr->trace, nullptr);

    std::string wire = pr->table.SerializeColumns();
    EXPECT_EQ(wire, tr->table.SerializeColumns())
        << "traced TPC-H run differs from untraced at " << threads
        << " threads";
    if (reference_wire.empty()) {
      reference_wire = wire;
    } else {
      EXPECT_EQ(wire, reference_wire)
          << "TPC-H result differs across thread counts at " << threads;
    }
  }
}

TEST_F(ObsTpchTest, ExplainAnalyzeReportsPredictedVsObservedBytesPerEdge) {
  ServiceConfig config;
  auto service = MakeService(config);  // tracing off: EXPLAIN forces it
  auto session = service->OpenSession(env_.user);
  ASSERT_TRUE(session.ok());
  auto report = service->ExplainAnalyzeSql(kTpchQ3, *session);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_FALSE(report->edges.empty())
      << "no assignee-crossing edges; calibration is vacuous";
  double err_sum = 0;
  for (const EdgeCalibration& e : report->edges) {
    EXPECT_GE(e.node_id, 0);
    EXPECT_FALSE(e.from.empty());
    EXPECT_FALSE(e.to.empty());
    EXPECT_GT(e.observed_bytes, 0u) << "edge at node " << e.node_id;
    EXPECT_GT(e.predicted_bytes, 0.0) << "edge at node " << e.node_id;
    EXPECT_NEAR(e.abs_rel_err,
                std::fabs(e.predicted_bytes -
                          static_cast<double>(e.observed_bytes)) /
                    std::max<double>(
                        static_cast<double>(e.observed_bytes), 1.0),
                1e-12);
    err_sum += e.abs_rel_err;
  }
  EXPECT_NEAR(report->mean_abs_rel_err,
              err_sum / static_cast<double>(report->edges.size()), 1e-12);
  EXPECT_GT(report->total_transfer_bytes, 0u);
  EXPECT_GT(report->num_messages, 0u);
  EXPECT_EQ(report->failovers, 0u);

  EXPECT_NE(report->text.find("EXPLAIN ANALYZE (trace 0x"),
            std::string::npos)
      << report->text;
  EXPECT_NE(report->text.find("cost-model calibration:"), std::string::npos)
      << report->text;
  EXPECT_NE(report->text.find("[net "), std::string::npos) << report->text;
  EXPECT_NE(report->text.find("[rows="), std::string::npos) << report->text;
  std::string json = report->ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_bytes\""), std::string::npos);

  // The execution behind the report was a real one: it warmed the cache
  // and counted in the metrics.
  auto warm = service->ExplainAnalyzeSql(kTpchQ3, *session);
  ASSERT_TRUE(warm.ok());
  EXPECT_GE(service->Metrics().cache_hits, 1u);
}

}  // namespace
}  // namespace mpq
